"""Inlining of parallelism-carrying procedure calls.

The CCDP transformation rewrites statements in place, so references
inside procedures that contribute epochs to the entry procedure's
structure must be materialised there first.  This pass replaces every
``call p(...)`` whose callee (transitively) contains a DOALL loop with
the callee's body, formal scalars substituted by the actual argument
expressions.  Purely-serial callees stay as calls and are handled by
interprocedural summaries.
"""

from __future__ import annotations

from typing import List

from ..analysis.callgraph import CallGraph
from ..ir.program import Program
from ..ir.stmt import CallStmt, Stmt
from ..ir.visitor import rewrite_body, substitute_in_stmt


def inline_parallel_calls(program: Program, max_depth: int = 16) -> int:
    """Inline calls-with-parallelism into the entry procedure, in place.
    Returns the number of call sites inlined.  Raises on recursion among
    parallelism-carrying procedures."""
    callgraph = CallGraph.build(program)
    inlined = 0
    entry = program.entry_proc

    for _ in range(max_depth):
        changed = False

        def expand(stmt: Stmt):
            nonlocal inlined, changed
            if isinstance(stmt, CallStmt) and callgraph.contains_parallelism(stmt.name):
                if callgraph.is_recursive(stmt.name):
                    raise ValueError(
                        f"cannot inline recursive parallel procedure {stmt.name!r}")
                callee = program.procedures[stmt.name]
                bindings = {formal: actual
                            for formal, actual in zip(callee.params, stmt.args)}
                changed = True
                inlined += 1
                return [substitute_in_stmt(s, bindings) for s in callee.body]
            return None

        entry.body = rewrite_body(entry.body, expand)
        if not changed:
            return inlined
    raise ValueError("parallel-call inlining did not converge "
                     f"within {max_depth} rounds (deep call chain?)")


__all__ = ["inline_parallel_calls"]
