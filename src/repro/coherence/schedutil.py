"""Shared helpers for the prefetch scheduling techniques.

Everything here errs in the *coherent* direction: when an address
pattern cannot be expressed, the caller falls back to a bypass-cache
read, which is always correct.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis.affine import AffineRef, affine_ref
from ..analysis.epochs import RefInfo
from ..analysis.locality import PrefetchGroup
from ..ir.arrays import ArrayDecl
from ..ir.expr import (ArrayRef, BinOp, Expr, IntConst, IntrinsicCall,
                       RefMode, VarRef)
from ..ir.stmt import (Assign, CallStmt, If, InvalidateLines, Loop, LoopKind,
                       PrefetchLine, PrefetchVector, Stmt)
from ..ir.visitor import substitute
from .config import CCDPConfig


def variant_axis(info: RefInfo, var: str) -> Optional[Tuple[int, int]]:
    """(dimension index, coefficient) of the unique dimension of the
    reference whose subscript varies with ``var``; ``None`` when zero or
    several dimensions vary, or the reference is non-affine."""
    if info.aref is None:
        return None
    hits = [(dim, form.coeff(var))
            for dim, form in enumerate(info.aref.dims) if form.coeff(var) != 0]
    if len(hits) != 1:
        return None
    return hits[0]


def clamp_expr(expr: Expr, lo: int, hi: int) -> Expr:
    """``min(hi, max(lo, expr))`` as IR."""
    return IntrinsicCall("min", [IntConst(hi),
                                 IntrinsicCall("max", [IntConst(lo), expr])])


def sub_with(ref: ArrayRef, var: str, replacement: Expr) -> ArrayRef:
    """Clone ``ref`` with ``var`` substituted in all subscripts."""
    fresh = ref.clone()
    fresh.subscripts = [substitute(s, {var: replacement}) for s in fresh.subscripts]
    fresh.mode = RefMode.NORMAL
    return fresh


def shifted_ref(ref: ArrayRef, var: str, delta: int) -> ArrayRef:
    """Clone ``ref`` with ``var -> var + delta`` (prefetch look-ahead)."""
    if delta == 0:
        fresh = ref.clone()
        fresh.mode = RefMode.NORMAL
        return fresh
    return sub_with(ref, var, BinOp("+", VarRef(var), IntConst(delta)))


# ---------------------------------------------------------------------------
# Warm-up invalidations for group-spatial trailing references
# ---------------------------------------------------------------------------

def warmup_invalidations(group: PrefetchGroup, loop: Loop, config: CCDPConfig,
                         line_elems: int) -> Tuple[List[Stmt], List[RefInfo]]:
    """Statements to place before ``loop`` so trailing references are
    coherent during the iterations before the leading prefetch stream
    has swept past them.

    Returns ``(invalidations, bypass_fallbacks)``: members whose warm-up
    window cannot be expressed are demoted to bypass reads instead.
    """
    stmts: List[Stmt] = []
    fallbacks: List[RefInfo] = []
    if not group.trailing:
        return stmts, fallbacks
    stride = abs(group.stride_elems)
    lead_const = group.leading.aref.address.const if group.leading.aref else 0
    for member in group.trailing:
        axis_info = variant_axis(member, loop.var)
        if member.aref is None:
            member.ref.mode = RefMode.BYPASS
            fallbacks.append(member)
            continue
        delta = lead_const - member.aref.address.const
        if delta <= 0:
            continue  # at or past the leading reference; always covered
        warm_iters = math.ceil(delta / max(1, stride))
        if axis_info is None:
            # Invariant trailing ref within the line of the leading one —
            # one line invalidation at the member's own address.
            start = [s.clone() for s in member.ref.subscripts]
            start = [substitute(s, {loop.var: loop.lower.clone()}) for s in start]
            stmts.append(InvalidateLines(member.ref.array, start, 0, IntConst(line_elems)))
            continue
        axis, coeff = axis_info
        extent = member.decl.shape[axis]
        length = warm_iters * abs(coeff) + line_elems
        start = [substitute(s.clone(), {loop.var: loop.lower.clone()})
                 for s in member.ref.subscripts]
        start[axis] = clamp_expr(start[axis], 1, extent)
        stmts.append(InvalidateLines(member.ref.array, start, axis,
                                     IntConst(min(length, extent))))
    return stmts, fallbacks


# ---------------------------------------------------------------------------
# Statement-list surgery
# ---------------------------------------------------------------------------

def locate(container: Sequence[Stmt], stmt: Stmt) -> Optional[int]:
    """Index of the top-level statement of ``container`` that is (or
    contains) ``stmt``."""
    for index, candidate in enumerate(container):
        for node in candidate.walk():
            if node is stmt:
                return index
    return None


def defines_names(stmt: Stmt, names: set) -> bool:
    """Conservative: does ``stmt`` (or anything nested) define any of the
    scalar ``names``?  Calls are treated as defining everything."""
    for node in stmt.walk():
        if isinstance(node, CallStmt):
            return True
        if isinstance(node, Assign) and isinstance(node.lhs, VarRef):
            if node.lhs.name in names:
                return True
        if isinstance(node, Loop) and node.var in names:
            return True
    return False


def subscript_free_vars(ref: ArrayRef) -> set:
    names = set()
    for sub in ref.subscripts:
        names |= sub.free_vars()
    return names


def _definitely_distinct(a: Optional[AffineRef], b: Optional[AffineRef]) -> bool:
    """Provably different addresses for every loop environment: some
    dimension's subscripts share coefficients but differ in constant."""
    if a is None or b is None or len(a.dims) != len(b.dims):
        return False
    return any(x.same_shape(y) and x.const != y.const
               for x, y in zip(a.dims, b.dims))


def blocks_hoist(stmt: Stmt, ref: ArrayRef,
                 decl: Optional[ArrayDecl] = None) -> bool:
    """May a prefetch of ``ref`` NOT be hoisted above ``stmt``?

    Two data hazards beyond the scalar-definition check: a write to the
    same array whose address cannot be proven distinct (the prefetched
    copy would predate the write its use must observe), and a parallel
    loop writing the array (an epoch boundary — the paper forbids
    prefetched data to cross it, as other PEs' writes invalidate it)."""
    aref = affine_ref(ref, decl) if decl is not None else None
    for node in stmt.walk():
        if isinstance(node, Loop) and node.kind == LoopKind.DOALL:
            if any(isinstance(s, Assign) and isinstance(s.lhs, ArrayRef)
                   and s.lhs.array == ref.array for s in node.walk()):
                return True
        elif isinstance(node, Assign) and isinstance(node.lhs, ArrayRef) \
                and node.lhs.array == ref.array:
            wref = affine_ref(node.lhs, decl) if decl is not None else None
            if not _definitely_distinct(aref, wref):
                return True
    return False


def hoist_floor(container: Sequence[Stmt], use_index: int, ref: ArrayRef,
                floor: int, decl: Optional[ArrayDecl] = None) -> int:
    """Earliest index in ``container`` a prefetch of ``ref`` may move to,
    starting from its use at ``use_index`` and never above ``floor``."""
    names = subscript_free_vars(ref)
    position = use_index
    while position > floor:
        previous = container[position - 1]
        if defines_names(previous, names):
            break
        if blocks_hoist(previous, ref, decl):
            break
        position -= 1
    return position


__all__ = ["variant_axis", "clamp_expr", "sub_with", "shifted_ref",
           "warmup_invalidations", "locate", "defines_names",
           "subscript_free_vars", "blocks_hoist", "hoist_floor"]
