"""Software pipelining of cache-line prefetches (Mowry-style), adapted
to the CCDP scheme as the paper describes.

The loop is split into the classic three sections:

* **prologue** — issue prefetches for the first ``d`` iterations;
* **steady state** — iteration ``i`` prefetches the targets of
  iteration ``i + d`` and then runs the original body;
* **epilogue** — the last ``d`` iterations run without prefetches (their
  data was prefetched by the steady state).

``d`` is ``ceil(prefetch latency / loop body time)``, clamped to the
configured range (the paper's empirically-tuned compiler parameter), and
reduced so the outstanding prefetches fit the prefetch queue — prefetches
are dropped entirely when even the minimum look-ahead would overflow the
queue.  Per the paper, SP applies only to inner loops without procedure
calls, and (Fig. 2) only to serial loops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..analysis.costmodel import average_remote_latency, loop_body_cost
from ..ir.expr import BinOp, IntConst, IntrinsicCall
from ..ir.loops import LSC, contains_call, static_trip_count
from ..ir.stmt import Loop, LoopKind, PrefetchLine, Stmt, clone_body
from ..ir.visitor import const_int_value
from .config import CCDPConfig
from .schedutil import shifted_ref, warmup_invalidations
from .target_analysis import PrefetchTarget


@dataclass
class SPOutcome:
    """Successful software-pipelining of one inner loop."""

    lsc: LSC
    targets: List[PrefetchTarget]
    distance: int
    body_cycles: float
    prologue: Loop = None          # type: ignore[assignment]
    main: Loop = None              # type: ignore[assignment]
    epilogue: Loop = None          # type: ignore[assignment]
    bypass_fallbacks: List = field(default_factory=list)


def try_software_pipeline(lsc: LSC, targets: Sequence[PrefetchTarget],
                          config: CCDPConfig) -> Optional[SPOutcome]:
    """Attempt to software-pipeline all ``targets`` of one serial inner
    loop; rewrites the loop in place on success."""
    loop = lsc.loop
    if loop is None or loop.kind != LoopKind.SERIAL or not targets:
        return None
    if not config.enable_sp:
        return None
    if const_int_value(loop.step) != 1:
        return None
    if contains_call(loop):
        # Restriction from the paper: loop execution time is only
        # computable without (possibly recursive) procedure calls.
        return None

    body_cycles = loop_body_cost(loop, config.machine)
    latency = average_remote_latency(config.machine)
    distance = config.clamp_ahead(math.ceil(latency / max(body_cycles, 1.0)))

    # Queue constraint: at steady state about distance * n_targets line
    # prefetches are outstanding; shrink the distance to fit, and give up
    # (prefetches dropped) when even the minimum does not fit.
    slots = config.machine.prefetch_queue_slots
    if distance * len(targets) > slots:
        distance = max(1, slots // len(targets))
    if distance * len(targets) > slots or distance < 1:
        return None

    # Trip constraint: the steady-state loop runs lb .. ub-d, so a
    # look-ahead reaching the trip count would leave it zero-trip (the
    # validator rejects constant zero-trip loops).  Shrink the distance
    # to keep at least one steady-state iteration; a 1-iteration loop
    # cannot be pipelined at all.
    trips = static_trip_count(loop)
    if trips is not None:
        if trips <= 1:
            return None
        distance = min(distance, trips - 1)

    parent = lsc.parent_body
    assert parent is not None
    loop_index = next(i for i, s in enumerate(parent) if s is loop)

    d = distance
    lb = loop.lower
    ub = loop.upper
    pf_var = f"__pf_{loop.var}"

    # Prologue: prefetch iterations lb .. min(ub, lb+d-1).
    prologue_body: List[Stmt] = [
        PrefetchLine(shifted_ref(t.info.ref, loop.var, 0).clone(), True,
                     for_uid=t.info.uid, distance=d)
        for t in targets
    ]
    for stmt in prologue_body:
        stmt.ref.subscripts = [  # type: ignore[attr-defined]
            _rename_var(s, loop.var, pf_var) for s in stmt.ref.subscripts]  # type: ignore[attr-defined]
    prologue = Loop(pf_var, lb.clone(),
                    IntrinsicCall("min", [ub.clone(),
                                          BinOp("+", lb.clone(), IntConst(d - 1))]),
                    1, prologue_body, LoopKind.SERIAL, label=f"{loop.label}#pf" if loop.label else "")

    # Steady state: original loop over lb .. ub-d with look-ahead prefetches.
    main_prefetches: List[Stmt] = [
        PrefetchLine(shifted_ref(t.info.ref, loop.var, d), True,
                     for_uid=t.info.uid, distance=d)
        for t in targets
    ]
    main = Loop(loop.var, lb.clone(), BinOp("-", ub.clone(), IntConst(d)), 1,
                main_prefetches + loop.body, LoopKind.SERIAL, label=loop.label)

    # Epilogue: last d iterations, body cloned without prefetches.
    epilogue = Loop(loop.var,
                    IntrinsicCall("max", [lb.clone(),
                                          BinOp("+", BinOp("-", ub.clone(), IntConst(d)),
                                                IntConst(1))]),
                    ub.clone(), 1, clone_body(loop.body), LoopKind.SERIAL,
                    label=f"{loop.label}#ep" if loop.label else "")

    # Warm-up coherence for group-spatial trailing references.
    warmups: List[Stmt] = []
    fallbacks: List = []
    line_elems = config.machine.line_elems(targets[0].info.decl.dtype.size)
    for target in targets:
        inv, fb = warmup_invalidations(target.group, loop, config, line_elems)
        warmups.extend(inv)
        fallbacks.extend(fb)

    parent[loop_index:loop_index + 1] = warmups + [prologue, main, epilogue]
    return SPOutcome(lsc=lsc, targets=list(targets), distance=d,
                     body_cycles=body_cycles, prologue=prologue, main=main,
                     epilogue=epilogue, bypass_fallbacks=fallbacks)


def _rename_var(expr, old: str, new: str):
    from ..ir.expr import VarRef
    from ..ir.visitor import substitute

    return substitute(expr, {old: VarRef(new)})


__all__ = ["SPOutcome", "try_software_pipeline"]
