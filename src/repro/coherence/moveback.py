"""Moving back prefetches (MBP) — the fallback scheduling technique.

Adapted from Gornish's pull-back algorithm: a line prefetch for the
target is hoisted as far above its use as control and data dependences
allow — never above a statement that defines a scalar used in the
target's subscripts, never above a procedure call, never above a write
to the same array that is not provably distinct or a parallel epoch
boundary writing the array, and never out of the enclosing IF branch
(Fig. 2 cases 5/6).

The paper's tuning parameter decides whether a given hoist distance is
*worth it*: if the prefetch cannot be moved far enough back to plausibly
arrive in time (estimated cycle distance below ``mbp_min_cycles``), the
prefetch is dropped and the reference is demoted to a **bypass-cache
fetch** — the always-coherent fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis.costmodel import stmt_cost
from ..ir.expr import RefMode
from ..ir.loops import LSC
from ..ir.stmt import If, Loop, PrefetchLine, Stmt
from .config import CCDPConfig
from .schedutil import hoist_floor, locate
from .target_analysis import PrefetchTarget


@dataclass
class MBPOutcome:
    """Result for one target: either a placed prefetch or a bypass."""

    target: PrefetchTarget
    moved: bool
    distance_cycles: float = 0.0
    stmt: Optional[PrefetchLine] = None


def apply_move_back(target: PrefetchTarget, config: CCDPConfig,
                    limit_to_if: bool = True) -> MBPOutcome:
    """Schedule one target with MBP; mutates the program in place."""
    info = target.info
    container, floor, use_index = _containing_block(target, limit_to_if)
    if container is None or use_index is None:
        return _bypass(target)
    if not config.enable_mbp:
        return _bypass(target)

    position = hoist_floor(container, use_index, info.ref, floor,
                           decl=info.decl)
    distance = sum(stmt_cost(container[i], config.machine)
                   for i in range(position, use_index))
    if distance < config.mbp_min_cycles:
        return _bypass(target)

    prefetch = PrefetchLine(info.ref.clone(), invalidate_first=True,
                            for_uid=info.uid)
    prefetch.ref.mode = RefMode.NORMAL
    container.insert(position, prefetch)
    _bypass_trailing(target)
    return MBPOutcome(target=target, moved=True, distance_cycles=distance,
                      stmt=prefetch)


def _bypass(target: PrefetchTarget) -> MBPOutcome:
    """Drop the prefetch: the reference (and its whole group, which was
    counting on the leading prefetch) reads around the cache."""
    target.info.ref.mode = RefMode.BYPASS
    for member in target.group.trailing:
        member.ref.mode = RefMode.BYPASS
    return MBPOutcome(target=target, moved=False)


def _bypass_trailing(target: PrefetchTarget) -> None:
    """MBP prefetches one line per iteration at the use point; unlike the
    SP/VPG paths there is no warm-up window machinery here, so trailing
    group members fall back to bypass reads for guaranteed coherence."""
    for member in target.group.trailing:
        member.ref.mode = RefMode.BYPASS


def _containing_block(target: PrefetchTarget,
                      limit_to_if: bool) -> Tuple[Optional[List[Stmt]], int, Optional[int]]:
    """The statement list the prefetch may move within, the floor index,
    and the index of the statement using the target."""
    lsc = target.lsc
    stmt = target.info.stmt

    if lsc.is_loop:
        assert lsc.loop is not None
        block, floor = _innermost_block(lsc.loop.body, stmt, limit_to_if)
        if block is None:
            return None, 0, None
        return block, floor, locate(block, stmt)

    # Serial segment: move within the parent body, not above the segment.
    assert lsc.parent_body is not None
    block, floor = _innermost_block(lsc.parent_body, stmt, limit_to_if)
    if block is None:
        return None, 0, None
    if block is lsc.parent_body:
        floor = max(floor, lsc.index_in_parent)
    return block, floor, locate(block, stmt)


def _innermost_block(root: List[Stmt], stmt: Stmt,
                     limit_to_if: bool) -> Tuple[Optional[List[Stmt]], int]:
    """The innermost statement list containing ``stmt``: descends into IF
    branches (which bound the hoist per Fig. 2 cases 5/6) but not into
    loops (the caller supplies the right loop body)."""
    index = locate(root, stmt)
    if index is None:
        return None, 0
    owner = root[index]
    if owner is stmt:
        return root, 0
    if isinstance(owner, If) and limit_to_if:
        for branch in (owner.then_body, owner.else_body):
            block, floor = _innermost_block(branch, stmt, limit_to_if)
            if block is not None:
                return block, floor
        return root, 0
    if isinstance(owner, Loop):
        block, floor = _innermost_block(owner.body, stmt, limit_to_if)
        if block is not None:
            return block, floor
    return root, 0


__all__ = ["MBPOutcome", "apply_move_back"]
