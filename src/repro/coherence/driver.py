"""The CCDP compiler driver: one call transforms a parallel program for
coherent execution with cached shared data.

Pipeline (paper §3.2):

1. inline parallelism-carrying calls (so epochs are materialised);
2. **stale reference analysis** over the epoch flow graph;
3. **prefetch target analysis** (Fig. 1);
4. **prefetch scheduling** (Fig. 2) + correctness code generation
   (invalidate-before-prefetch, bypass demotions, pre-call
   invalidations for stale interprocedural summaries);
5. validation of the transformed IR.

The input program is never mutated; the transformed clone plus a full
:class:`CCDPReport` are returned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.epochs import EpochGraph, RefInfo, build_epoch_graph
from ..analysis.parcheck import ParCheckResult, check_doall_independence
from ..analysis.stale import StaleAnalysisResult, analyse_stale_references
from ..ir.expr import RefMode
from ..ir.program import Program
from ..ir.validate import validate_program
from .config import CCDPConfig
from .inline import inline_parallel_calls
from .nonstale import add_nonstale_targets
from .scheduling import ScheduleReport, schedule_prefetches
from .target_analysis import TargetAnalysisResult, prefetch_target_analysis


@dataclass
class CCDPReport:
    """Everything the CCDP pipeline decided, for inspection/reporting."""

    stale: StaleAnalysisResult
    targets: TargetAnalysisResult
    schedule: ScheduleReport
    independence: Optional[ParCheckResult] = None
    inlined_calls: int = 0
    nonstale_targets: int = 0

    def summary(self) -> str:
        lines = [
            f"stale analysis : {self.stale.summary()}",
            f"target analysis: {self.targets.summary()}",
            f"scheduling     : {self.schedule.summary()}",
        ]
        if self.independence is not None:
            lines.insert(0, f"parallelism    : {self.independence.summary()}")
        return "\n".join(lines)


def ccdp_transform(program: Program,
                   config: Optional[CCDPConfig] = None) -> Tuple[Program, CCDPReport]:
    """Apply the full CCDP scheme; returns (transformed clone, report)."""
    config = config or CCDPConfig()
    transformed = program.clone()

    # Sanity-check the epoch model's core assumption before relying on it:
    # DOALL tasks must be independent (the original toolchain's Polaris
    # guaranteed this; we re-derive it with a GCD/bounds dependence test).
    independence = check_doall_independence(transformed)

    inlined = inline_parallel_calls(transformed)

    graph = build_epoch_graph(transformed)
    stale = analyse_stale_references(transformed, graph)
    targets = prefetch_target_analysis(transformed, stale, config)

    nonstale_count = 0
    if config.prefetch_nonstale:
        nonstale_count = add_nonstale_targets(transformed, graph, stale,
                                              targets, config)

    # Code generation part 1: coherence demotions decided by Fig. 1.
    for info in targets.demoted_bypass:
        info.ref.mode = RefMode.BYPASS
    _insert_call_invalidations(transformed, targets.stale_calls)

    # Code generation part 2: Fig. 2 scheduling (inserts prefetches,
    # pipelines loops, demotes unplaceable targets to bypass).
    schedule = schedule_prefetches(transformed, targets, config)

    validate_program(transformed)
    report = CCDPReport(stale=stale, targets=targets, schedule=schedule,
                        independence=independence, inlined_calls=inlined,
                        nonstale_targets=nonstale_count)
    return transformed, report


def _insert_call_invalidations(program: Program, stale_calls: List[RefInfo]) -> None:
    """A potentially-stale read buried inside a serial callee: invalidate
    the whole (summarised) array section before the call so the callee's
    cached reads miss to fresh memory."""
    from ..ir.expr import IntConst as IC
    from ..ir.stmt import CallStmt, InvalidateLines, Stmt

    done = set()
    for info in stale_calls:
        call = info.stmt
        key = (call.uid, info.decl.name)
        if key in done:
            continue
        done.add(key)
        decl = info.decl
        inv = InvalidateLines(decl.name, [IC(1) for _ in decl.shape],
                              decl.rank - 1, IC(decl.shape[-1]))
        # Wide invalidation: flatten to "whole array" semantics by walking
        # the slowest axis over its full extent; the runtime invalidates
        # the covering address range.
        _insert_before(program, call, inv)


def _insert_before(program: Program, anchor, stmt) -> bool:
    """Insert ``stmt`` immediately before ``anchor`` wherever it lives."""
    for proc in program.procedures.values():
        if _insert_in_body(proc.body, anchor, stmt):
            return True
    return False


def _insert_in_body(body, anchor, stmt) -> bool:
    for index, child in enumerate(body):
        if child is anchor:
            body.insert(index, stmt)
            return True
        for nested in child.bodies():
            if _insert_in_body(nested, anchor, stmt):
                return True
    return False


__all__ = ["CCDPReport", "ccdp_transform"]
