"""Prefetch scheduling — the paper's Figure 2 algorithm.

For each inner loop or serial code segment (LSC) holding prefetch
targets, dispatch on the LSC kind and apply the scheduling techniques in
the prescribed order:

====  ==========================================  =======================
case  LSC kind                                    technique order
====  ==========================================  =======================
1     serial loop, known bounds                   VPG, SP, MBP
1b    serial loop, unknown bounds                 SP, MBP
2     parallel DOALL, static schedule, known      VPG, MBP
2b    parallel DOALL, static schedule, unknown    MBP
3     parallel DOALL, dynamic schedule            MBP
4     serial code section                         MBP
5     loop containing IF statements               MBP (bounded by branch)
6     LSC inside an IF branch                     as 1-4, within branch
====  ==========================================  =======================

Any target no technique can place is demoted to a bypass-cache read,
which preserves coherence unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ir.loops import LSC, contains_if, has_static_bounds
from ..ir.program import Program
from ..ir.stmt import LoopKind, ScheduleKind, Stmt
from .config import CCDPConfig
from .moveback import MBPOutcome, apply_move_back
from .schedutil import warmup_invalidations
from .software_pipeline import SPOutcome, try_software_pipeline
from .target_analysis import PrefetchTarget, TargetAnalysisResult
from .vector_prefetch import VPGOutcome, try_vector_prefetch


@dataclass
class LSCSchedule:
    """Scheduling decision record for one LSC."""

    lsc: LSC
    case: str
    vpg: List[VPGOutcome] = field(default_factory=list)
    sp: Optional[SPOutcome] = None
    mbp: List[MBPOutcome] = field(default_factory=list)

    def techniques_used(self) -> Dict[str, int]:
        out = {"vpg": len(self.vpg),
               "sp": len(self.sp.targets) if self.sp else 0,
               "mbp_moved": sum(1 for m in self.mbp if m.moved),
               "bypass": sum(1 for m in self.mbp if not m.moved)}
        return out


@dataclass
class ScheduleReport:
    """Whole-program scheduling outcome."""

    entries: List[LSCSchedule] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        totals = {"vpg": 0, "sp": 0, "mbp_moved": 0, "bypass": 0}
        for entry in self.entries:
            for key, value in entry.techniques_used().items():
                totals[key] += value
        return totals

    def cases(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for entry in self.entries:
            out[entry.case] = out.get(entry.case, 0) + 1
        return out

    def summary(self) -> str:
        counts = self.counts()
        return (f"scheduled {len(self.entries)} LSCs: "
                f"{counts['vpg']} targets via vector prefetch, "
                f"{counts['sp']} via software pipelining, "
                f"{counts['mbp_moved']} via move-back, "
                f"{counts['bypass']} dropped to bypass reads")


def schedule_prefetches(program: Program, analysis: TargetAnalysisResult,
                        config: CCDPConfig) -> ScheduleReport:
    """Run Fig. 2 over every LSC with prefetch targets, transforming the
    program in place."""
    report = ScheduleReport()
    for lsc, targets in analysis.targets_by_lsc():
        entry = _schedule_lsc(program, lsc, targets, config)
        report.entries.append(entry)
    return report


def _schedule_lsc(program: Program, lsc: LSC, targets: List[PrefetchTarget],
                  config: CCDPConfig) -> LSCSchedule:
    case = _classify_case_base(lsc)
    entry = LSCSchedule(lsc=lsc, case=_classify_case(lsc))

    if case in ("case4-serial-section", "case3-doall-dynamic",
                "case5-loop-with-if", "case2b-doall-unknown-bounds"):
        entry.mbp = [apply_move_back(t, config) for t in targets]
        return entry

    if case in ("case2-doall-static", ):
        remaining = []
        for target in targets:
            outcome = try_vector_prefetch(target, config, program) if config.enable_vpg else None
            if outcome is not None:
                entry.vpg.append(outcome)
                _cover_group(program, target, config)
            else:
                remaining.append(target)
        entry.mbp = [apply_move_back(t, config) for t in remaining]
        return entry

    # Serial loops: cases 1 / 1b.
    remaining = []
    if case == "case1-serial-known":
        for target in targets:
            outcome = try_vector_prefetch(target, config, program) if config.enable_vpg else None
            if outcome is not None:
                entry.vpg.append(outcome)
                _cover_group(program, target, config)
            else:
                remaining.append(target)
    else:  # case1b: unknown bounds, VPG skipped
        remaining = list(targets)

    if remaining:
        sp = try_software_pipeline(lsc, remaining, config)
        if sp is not None:
            entry.sp = sp
            remaining = []
    entry.mbp = [apply_move_back(t, config) for t in remaining]
    return entry


def _classify_case(lsc: LSC) -> str:
    base = _classify_case_base(lsc)
    # Fig. 2 case 6: the LSC sits inside an IF branch — the same technique
    # applies but all insertions stay within the branch (guaranteed by
    # construction: parent_body *is* the branch body).
    return base + "+case6-in-if" if lsc.in_if_branch else base


def _classify_case_base(lsc: LSC) -> str:
    if not lsc.is_loop:
        return "case4-serial-section"
    loop = lsc.loop
    assert loop is not None
    if contains_if(loop):
        return "case5-loop-with-if"
    if loop.kind == LoopKind.DOALL:
        if loop.schedule == ScheduleKind.DYNAMIC:
            return "case3-doall-dynamic"
        if has_static_bounds(loop):
            return "case2-doall-static"
        return "case2b-doall-unknown-bounds"
    if has_static_bounds(loop):
        return "case1-serial-known"
    return "case1b-serial-unknown"


def _cover_group(program: Program, target: PrefetchTarget, config: CCDPConfig) -> None:
    """After a successful VPG, trailing group members are covered by the
    (padded) vector itself — nothing further to do.  Kept as an explicit
    hook so the invariant is stated in one place."""
    return None


__all__ = ["LSCSchedule", "ScheduleReport", "schedule_prefetches"]
