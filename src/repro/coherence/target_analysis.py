"""Prefetch target analysis — the paper's Figure 1 algorithm.

Input: the set ``P`` of potentially-stale read references from stale
reference analysis.  Output: the set ``S ⊆ P`` worth prefetching, plus
the demotions:

* references not located in an innermost loop (or in epoch-level serial
  straight-line code) are **removed from S**; coherence for them is
  preserved by demoting them to *bypass-cache* reads;
* within each inner loop / serial code segment (LSC), uniformly
  generated references with group-spatial locality are clustered and
  only the **leading reference** of each group stays in S — the trailing
  references become normal reads serviced by the leading prefetch's
  freshly-installed line;
* non-affine references ("if the addresses cannot be converted into a
  linear expression") conservatively stay in S.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.epochs import RefInfo
from ..analysis.locality import PrefetchGroup, group_spatial_groups
from ..analysis.stale import StaleAnalysisResult
from ..ir.loops import LSC, collect_lscs
from ..ir.program import Program
from ..ir.stmt import Stmt
from .config import CCDPConfig


@dataclass
class PrefetchTarget:
    """One reference selected for prefetching, with its scheduling
    context."""

    info: RefInfo
    lsc: LSC
    group: PrefetchGroup

    @property
    def uid(self) -> int:
        return self.info.uid


@dataclass
class TargetAnalysisResult:
    """Outcome of Fig. 1: the prefetch set S plus all demotions."""

    targets: List[PrefetchTarget] = field(default_factory=list)
    demoted_group: List[RefInfo] = field(default_factory=list)
    demoted_bypass: List[RefInfo] = field(default_factory=list)
    stale_calls: List[RefInfo] = field(default_factory=list)
    lscs: List[LSC] = field(default_factory=list)
    unassigned: List[RefInfo] = field(default_factory=list)

    def targets_by_lsc(self) -> List[Tuple[LSC, List[PrefetchTarget]]]:
        """Targets grouped per LSC, in LSC order (the unit Fig. 2 walks)."""
        buckets: Dict[int, List[PrefetchTarget]] = {}
        for target in self.targets:
            buckets.setdefault(id(target.lsc), []).append(target)
        return [(lsc, buckets[id(lsc)]) for lsc in self.lscs if id(lsc) in buckets]

    def summary(self) -> str:
        return (f"{len(self.targets)} prefetch targets; "
                f"{len(self.demoted_group)} demoted by group-spatial reuse; "
                f"{len(self.demoted_bypass)} demoted to bypass reads; "
                f"{len(self.stale_calls)} stale call summaries")


def prefetch_target_analysis(program: Program, stale: StaleAnalysisResult,
                             config: CCDPConfig) -> TargetAnalysisResult:
    """Run the Fig. 1 algorithm over the (inlined) program."""
    result = TargetAnalysisResult()
    result.lscs = collect_lscs(program.entry_proc.body)
    stmt_to_lsc = _statement_lsc_map(result.lscs)

    # Stage S = P, then partition P by LSC.
    per_lsc: Dict[int, List[RefInfo]] = {}
    lsc_by_id: Dict[int, LSC] = {id(l): l for l in result.lscs}
    for info in stale.stale_reads.values():
        if info.summarised_call is not None:
            # A stale read buried in a serial callee: handled by code
            # generation with a pre-call invalidation.
            result.stale_calls.append(info)
            continue
        lsc_id = stmt_to_lsc.get(info.stmt.uid)
        if lsc_id is None:
            # Reference in a statement outside the entry procedure (or in
            # analysis-only context): keep the program coherent via bypass.
            result.demoted_bypass.append(info)
            result.unassigned.append(info)
            continue
        lsc = lsc_by_id[lsc_id]
        if _eligible(lsc):
            per_lsc.setdefault(lsc_id, []).append(info)
        else:
            # Fig. 1 step 1: not in an innermost loop (nor epoch-level
            # serial code) — remove from S.
            result.demoted_bypass.append(info)

    # Per-LSC group-spatial clustering; keep only leading references.
    line_words = config.machine.line_words
    for lsc_id, infos in per_lsc.items():
        lsc = lsc_by_id[lsc_id]
        inner_var = lsc.loop.var if lsc.loop is not None else None
        groups, nonaffine = group_spatial_groups(infos, inner_var, line_words)
        for group in groups:
            result.targets.append(PrefetchTarget(info=group.leading, lsc=lsc, group=group))
            result.demoted_group.extend(group.trailing)
        for info in nonaffine:
            # Conservative: non-affine references are prefetched alone.
            result.targets.append(PrefetchTarget(
                info=info, lsc=lsc,
                group=PrefetchGroup(leading=info, trailing=[], stride_elems=0)))
    return result


def _eligible(lsc: LSC) -> bool:
    """Fig. 1 keeps targets in innermost loops; we additionally keep
    epoch-level straight-line serial code (paper Fig. 2 case 4 schedules
    such targets with move-back prefetches)."""
    if lsc.is_loop:
        return True
    return not lsc.enclosing_loops


def _statement_lsc_map(lscs: List[LSC]) -> Dict[int, int]:
    """Map statement uid -> id(LSC) for every statement owned by an LSC."""
    mapping: Dict[int, int] = {}
    for lsc in lscs:
        owner = id(lsc)
        if lsc.is_loop:
            assert lsc.loop is not None
            for stmt in lsc.loop.walk():
                mapping[stmt.uid] = owner
        else:
            for stmt in lsc.stmts:
                for node in stmt.walk():
                    mapping[node.uid] = owner
    return mapping


__all__ = ["PrefetchTarget", "TargetAnalysisResult", "prefetch_target_analysis"]
