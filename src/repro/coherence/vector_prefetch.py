"""Vector prefetch generation (VPG) — adapted from Gornish's pull-out
algorithm as the paper describes.

A prefetch target inside an inner loop is pulled out of the loop and
replaced by one block (vector) prefetch covering the loop's footprint of
that reference.  Following the paper's modification of Gornish, the
reference is pulled out **one loop level at a time**, each hoist checked
against the hardware constraints (vector length vs. cache capacity), and
the hoist stops at the first level where the reference still varies.

Hoisting above a DOALL loop places the vector in the loop's *preamble*
(executed once per PE per epoch): a prefetch must land in the cache of
the PE that will consume the data, so a parallel loop is the ceiling of
any hoist.  Pulling a target out of the DOALL itself (Fig. 2 case 2,
static scheduling with known bounds — "if the loop is parallel and the
loop scheduling strategy is known at compile time") emits a per-PE
vector over the PE's own iteration chunk via the ``__lo_<var>`` /
``__hi_<var>`` chunk variables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis.epochs import RefInfo
from ..ir.expr import BinOp, Expr, IntConst, IntrinsicCall, VarRef
from ..ir.loops import static_trip_count
from ..ir.program import Program
from ..ir.stmt import Loop, LoopKind, PrefetchLine, PrefetchVector, Stmt
from ..ir.visitor import const_int_value, substitute
from .config import CCDPConfig
from .schedutil import clamp_expr, sub_with, variant_axis
from .target_analysis import PrefetchTarget


@dataclass
class VPGOutcome:
    """Successful vector prefetch generation for one target."""

    target: PrefetchTarget
    stmt: Stmt                  #: the inserted PrefetchVector / PrefetchLine
    placement: str              #: "before-loop" | "preamble"
    hoist_levels: int
    est_words: int


def try_vector_prefetch(target: PrefetchTarget, config: CCDPConfig,
                        program: Program) -> Optional[VPGOutcome]:
    """Attempt VPG for one target; returns ``None`` when not applicable
    (the Fig. 2 driver then falls through to the next technique)."""
    lsc = target.lsc
    loop = lsc.loop
    info = target.info
    if loop is None or info.aref is None:
        return None
    if const_int_value(loop.step) != 1:
        return None
    if loop.is_parallel and loop.schedule != "static_block":
        # Per-PE chunk vectors assume contiguous (block) iteration chunks.
        return None

    axis_info = variant_axis(info, loop.var)
    invariant = info.aref.address.coeff(loop.var) == 0
    if not invariant:
        if axis_info is None or abs(axis_info[1]) != 1:
            return None  # multi-dim or non-unit variation: inexpressible

    trip = static_trip_count(loop)
    if trip is None:
        return None  # unknown bounds: Fig. 2 sends these to SP/MBP

    # Hardware constraint check (paper: vector length vs. cache size).
    # A strided vector (axis stride >= one line) installs a whole cache
    # line per element, so its cache footprint is length * line_words.
    pad = _group_pad(target, info)
    if invariant:
        est_words = config.machine.line_words
    elif loop.is_parallel:
        est_words = math.ceil(trip / config.machine.n_pes) + 2 * pad
    else:
        est_words = trip + 2 * pad
    if not invariant:
        axis_stride = info.decl.strides()[axis_info[0]]  # type: ignore[index]
        if axis_stride >= config.machine.line_words:
            est_cache_words = est_words * config.machine.line_words
        else:
            est_cache_words = est_words * axis_stride + config.machine.line_words
    else:
        est_cache_words = est_words
    if est_cache_words > config.max_vector_words:
        return None
    if not invariant and est_words < config.vector_min_words:
        return None  # a tiny vector is not worth its startup cost

    # Build the prefetch statement.
    if loop.is_parallel:
        lo_name, hi_name, _ = loop.chunk_vars()
        lo_expr: Expr = VarRef(lo_name)
        hi_expr: Expr = VarRef(hi_name)
    else:
        lo_expr = loop.lower.clone()
        hi_expr = loop.upper.clone()

    if invariant:
        stmt: Stmt = PrefetchLine(sub_with(info.ref, loop.var, lo_expr),
                                  invalidate_first=True, for_uid=info.uid)
    else:
        axis, coeff = axis_info  # type: ignore[misc]
        stmt = _build_vector(info, loop.var, axis, coeff, lo_expr, hi_expr, pad)

    # Place it: directly into a parallel loop's preamble, else before the
    # loop — then try to hoist across invariant enclosing levels.
    if loop.is_parallel:
        loop.preamble.append(stmt)
        return VPGOutcome(target, stmt, "preamble", 0, est_words)

    container, index, placement, levels = _hoist_chain(target, stmt, program)
    if placement == "preamble":
        container.append(stmt)
    else:
        container.insert(index, stmt)
    return VPGOutcome(target, stmt, placement, levels, est_words)


def _group_pad(target: PrefetchTarget, info: RefInfo) -> int:
    """Extra elements (each side) so the vector also covers the group's
    trailing references."""
    if not target.group.trailing:
        return 0
    axis_strides = info.decl.strides()
    axis_info = variant_axis(info, target.lsc.loop.var) if target.lsc.loop else None
    axis_stride = axis_strides[axis_info[0]] if axis_info else 1
    return math.ceil(target.group.span_elems / max(1, axis_stride))


def _build_vector(info: RefInfo, var: str, axis: int, coeff: int,
                  lo_expr: Expr, hi_expr: Expr, pad: int) -> PrefetchVector:
    extent = info.decl.shape[axis]
    axis_sub = info.ref.subscripts[axis]
    at_lo = substitute(axis_sub, {var: lo_expr})
    at_hi = substitute(axis_sub, {var: hi_expr})
    if coeff < 0:
        at_lo, at_hi = at_hi, at_lo
    if pad:
        at_lo = BinOp("-", at_lo, IntConst(pad))
        at_hi = BinOp("+", at_hi, IntConst(pad))
    start = clamp_expr(at_lo, 1, extent)
    end = clamp_expr(at_hi, 1, extent)
    length = BinOp("+", BinOp("-", end, start.clone()), IntConst(1))
    subs: List[Expr] = []
    for dim, sub in enumerate(info.ref.subscripts):
        if dim == axis:
            subs.append(start)
        else:
            subs.append(substitute(sub.clone(), {var: lo_expr.clone()}))
    return PrefetchVector(info.ref.array, subs, axis, length, IntConst(1),
                          invalidate_first=True, for_uid=info.uid)


def _hoist_chain(target: PrefetchTarget, stmt: Stmt,
                 program: Program) -> Tuple[List[Stmt], int, str, int]:
    """Pull the generated prefetch out of enclosing loops, one level at a
    time, while it stays invariant.  Returns (container, index,
    placement, levels hoisted)."""
    lsc = target.lsc
    assert lsc.parent_body is not None and lsc.loop is not None
    container: List[Stmt] = lsc.parent_body
    anchor: Stmt = lsc.loop
    levels = 0
    if lsc.in_if_branch:
        # Fig. 2 case 6: prefetch only within the if branch.
        return container, _index_of(container, anchor), "before-loop", levels

    free = {name for expr in stmt.expressions() for name in expr.free_vars()}
    array = target.info.ref.array
    chain = list(lsc.enclosing_loops)  # outermost .. innermost
    entry_body = program.entry_proc.body
    while chain:
        enclosing = chain.pop()  # innermost remaining
        if not any(s is anchor for s in enclosing.body):
            break  # anchor not directly inside (e.g. behind an If): stop
        if enclosing.var in free:
            break  # still varies at this level
        if _writes_array(enclosing, array):
            # Gornish's data-dependence condition: a write to the array
            # anywhere in this loop means the (eagerly installed) vector
            # would go stale on later iterations — the prefetch must stay
            # inside, re-issued per iteration.
            break
        if enclosing.kind == LoopKind.DOALL:
            # Ceiling: each PE must prefetch into its own cache.
            return enclosing.preamble, len(enclosing.preamble), "preamble", levels + 1
        parent = chain[-1].body if chain else entry_body
        if not any(s is enclosing for s in parent):
            break
        container = parent
        anchor = enclosing
        levels += 1
    return container, _index_of(container, anchor), "before-loop", levels


def _writes_array(loop: Loop, array: str) -> bool:
    from ..ir.expr import ArrayRef
    from ..ir.stmt import Assign, CallStmt

    for stmt in loop.walk():
        if isinstance(stmt, Assign) and isinstance(stmt.lhs, ArrayRef):
            if stmt.lhs.array == array:
                return True
        if isinstance(stmt, CallStmt):
            return True  # opaque callee: assume it may write anything
    return False


def _index_of(container: Sequence[Stmt], anchor: Stmt) -> int:
    for index, stmt in enumerate(container):
        if stmt is anchor:
            return index
    raise ValueError("anchor statement not found in its container")


__all__ = ["VPGOutcome", "try_vector_prefetch"]
