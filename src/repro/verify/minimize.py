"""Delta-debugging shrinker for failing fuzz seeds.

Given a program and a *predicate* (``True`` = still exhibits the
failure), the shrinker greedily applies reduction passes until a fixed
point:

1. **drop statements** — any statement anywhere in the program (top-level
   epochs first, then nested statements);
2. **shrink loop bounds** — halve constant trip counts, down to one
   iteration;
3. **simplify subscripts** — replace affine offset expressions with their
   bare variable, then with the constant ``1``;
4. **drop unused arrays** — after the body shrank.

Every candidate edit is applied to a fresh clone, re-validated (invalid
candidates are discarded — the shrinker never hands the predicate a
program that :func:`repro.ir.validate.validate_program` rejects), and
kept only when the predicate still fails.  The result serializes through
the IR printer for corpus files and bug reports.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..ir.expr import ArrayRef, BinOp, IntConst, VarRef
from ..ir.program import Program
from ..ir.stmt import Loop, Stmt
from ..ir.validate import ValidationError, validate_program
from ..ir.visitor import const_int_value

Predicate = Callable[[Program], bool]

#: (procedure name, alternating (stmt index, bodies() index, ...) steps)
_Path = Tuple[str, Tuple[int, ...]]


def _body_at(program: Program, path: _Path) -> Optional[List[Stmt]]:
    """Resolve the statement list a path's final index points into."""
    proc_name, steps = path
    proc = program.procedures.get(proc_name)
    if proc is None:
        return None
    body: List[Stmt] = proc.body
    it = iter(steps[:-1])
    for stmt_index in it:
        body_index = next(it)
        if stmt_index >= len(body):
            return None
        bodies = list(body[stmt_index].bodies())
        if body_index >= len(bodies):
            return None
        body = bodies[body_index]
    return body


def _stmt_at(program: Program, path: _Path) -> Optional[Stmt]:
    body = _body_at(program, path)
    if body is None or path[1][-1] >= len(body):
        return None
    return body[path[1][-1]]


def _all_paths(program: Program) -> List[_Path]:
    """Paths to every statement, outermost first."""
    paths: List[_Path] = []

    def walk(proc: str, body: List[Stmt], steps: Tuple[int, ...]) -> None:
        for i, stmt in enumerate(body):
            paths.append((proc, steps + (i,)))
            for bi, sub in enumerate(stmt.bodies()):
                walk(proc, sub, steps + (i, bi))

    for proc in program.procedures.values():
        walk(proc.name, proc.body, ())
    return paths


def _try(candidate: Program, predicate: Predicate) -> bool:
    try:
        validate_program(candidate)
    except ValidationError:
        return False
    try:
        return bool(predicate(candidate))
    except Exception:
        # A predicate crash is not "the failure still reproduces" — the
        # shrinker must not wander onto a different bug.
        return False


def minimize_program(program: Program, predicate: Predicate,
                     max_trials: int = 2000) -> Program:
    """Shrink ``program`` while ``predicate`` keeps returning True.

    The input is never mutated; returns the smallest reproducer found
    within the trial budget (the input itself when nothing shrinks)."""
    current = program.clone()
    budget = [max_trials]

    def attempt(edit) -> bool:
        if budget[0] <= 0:
            return False
        candidate = current.clone()
        if not edit(candidate):
            return False
        budget[0] -= 1
        return _try(candidate, predicate) and _adopt(candidate)

    def _adopt(candidate: Program) -> bool:
        nonlocal current
        current = candidate
        return True

    changed = True
    while changed and budget[0] > 0:
        changed = False
        changed |= _pass_drop_statements(current, attempt)
        changed |= _pass_shrink_bounds(current, attempt)
        changed |= _pass_simplify_subscripts(current, attempt)
    _drop_unused_arrays(current)
    return current


# ---------------------------------------------------------------------------
# passes — each returns True when at least one edit was adopted
# ---------------------------------------------------------------------------

def _pass_drop_statements(current: Program, attempt) -> bool:
    changed = False
    # Deepest-last ordering: dropping a whole epoch first is the biggest
    # win; re-enumerate after every adopted edit (paths go stale).
    progress = True
    while progress:
        progress = False
        for path in _all_paths(current):
            def drop(candidate: Program, path=path) -> bool:
                body = _body_at(candidate, path)
                if body is None or path[1][-1] >= len(body):
                    return False
                del body[path[1][-1]]
                return True

            if attempt(drop):
                changed = progress = True
                break
    return changed


def _pass_shrink_bounds(current: Program, attempt) -> bool:
    changed = False
    progress = True
    while progress:
        progress = False
        for path in _all_paths(current):
            stmt = _stmt_at(current, path)
            if not isinstance(stmt, Loop):
                continue
            lo = const_int_value(stmt.lower)
            hi = const_int_value(stmt.upper)
            step = const_int_value(stmt.step)
            if lo is None or hi is None or step != 1 or hi <= lo:
                continue
            for new_hi in (lo, lo + (hi - lo) // 2):
                if new_hi >= hi:
                    continue

                def shrink(candidate: Program, path=path, new_hi=new_hi) -> bool:
                    target = _stmt_at(candidate, path)
                    if not isinstance(target, Loop):
                        return False
                    target.upper = IntConst(new_hi)
                    return True

                if attempt(shrink):
                    changed = progress = True
                    break
            if progress:
                break
    return changed


def _subscript_slots(stmt: Stmt) -> List[Tuple[int, int]]:
    """(ArrayRef ordinal within the statement, subscript index) pairs
    whose subscript is a compound expression."""
    slots = []
    ordinal = 0
    for expr in stmt.expressions():
        for node in expr.walk():
            if isinstance(node, ArrayRef):
                for k, sub in enumerate(node.subscripts):
                    if isinstance(sub, BinOp):
                        slots.append((ordinal, k))
                ordinal += 1
    return slots


def _rewrite_subscript(stmt: Stmt, ordinal: int, k: int, replacement) -> bool:
    count = 0
    for expr in stmt.expressions():
        for node in expr.walk():
            if isinstance(node, ArrayRef):
                if count == ordinal:
                    if k >= len(node.subscripts):
                        return False
                    node.subscripts[k] = replacement(node.subscripts[k])
                    return True
                count += 1
    return False


def _pass_simplify_subscripts(current: Program, attempt) -> bool:
    changed = False
    progress = True
    while progress:
        progress = False
        for path in _all_paths(current):
            stmt = _stmt_at(current, path)
            if stmt is None:
                continue
            for ordinal, k in _subscript_slots(stmt):
                for make in (_bare_var, lambda _old: IntConst(1)):

                    def simplify(candidate: Program, path=path,
                                 ordinal=ordinal, k=k, make=make) -> bool:
                        target = _stmt_at(candidate, path)
                        if target is None:
                            return False
                        return _rewrite_subscript(target, ordinal, k, make)

                    if attempt(simplify):
                        changed = progress = True
                        break
                if progress:
                    break
            if progress:
                break
    return changed


def _bare_var(old):
    """``j + 1`` -> ``j`` (first variable mentioned), else unchanged
    (the attempt then fails the did-anything-change test via predicate)."""
    for name in sorted(old.free_vars()):
        return VarRef(name)
    return IntConst(1)


def _drop_unused_arrays(program: Program) -> None:
    used = set()
    for proc in program.procedures.values():
        for stmt in proc.walk():
            for expr in stmt.expressions():
                for node in expr.walk():
                    if isinstance(node, ArrayRef):
                        used.add(node.array)
            for attr in ("array",):
                name = getattr(stmt, attr, None)
                if isinstance(name, str):
                    used.add(name)
            if isinstance(stmt, Loop) and stmt.align:
                used.add(stmt.align)
    for name in [n for n in program.arrays if n not in used]:
        del program.arrays[name]


__all__ = ["minimize_program"]
