"""Seeded random affine-program generator for differential fuzzing.

Programs are drawn from a grammar shaped like the paper's case studies:
an initialisation DOALL followed by 2–4 *epochs* chosen from a menu of
parallel stencils (affine subscripts with small constant offsets, which
form uniformly-generated groups), reversed-coefficient copies, serial
reductions, serial recurrence sweeps, straight-line serial segments, and
region loops (a serial time loop around DOALLs, contributing epoch-graph
back edges).

Three invariants hold for every seed, by construction:

* the program passes :func:`repro.ir.validate.validate_program` (loop
  bounds are constant and non-empty, loop variables never collide with
  arrays or enclosing loops);
* every DOALL is honestly independent — iteration ``j`` writes only
  column ``j`` of its target arrays and reads them only at column ``j``,
  while *other* arrays may be read at arbitrary affine columns (those
  cross-column reads of earlier epochs' output are exactly what goes
  stale and what CCDP must protect);
* all arithmetic is dyadic-rational ``+``/``-``/``*`` over deterministic
  initial values, so every version and backend must agree bit-exactly.

The printer/parser round-trip is also total: no symbolic constants are
emitted, so ``parse_program(format_program(p))`` reproduces the program
(the regression corpus relies on this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..ir.builder import E, ProgramBuilder
from ..ir.program import Program

#: array names — chosen to never collide with the loop variables below
_ARRAYS = ("u", "v", "w")
_COEFFS = (0.5, 0.25, -0.5, 1.5, 2.0, -1.0, 0.125, 0.75)
_SIZES = (6, 8, 10)

_EPOCH_MENU = ("stencil", "stencil", "copy_reverse", "reduction",
               "sweep", "segment", "region")


@dataclass(frozen=True)
class GenChoices:
    """What one seed drew — attached to fuzz reports for triage."""

    seed: int
    size: int
    arrays: Tuple[str, ...]
    epochs: Tuple[str, ...]

    def describe(self) -> str:
        return (f"seed {self.seed}: n={self.size}, arrays={list(self.arrays)}, "
                f"epochs={list(self.epochs)}")


def generate_program(seed: int) -> Program:
    program, _ = generate_with_choices(seed)
    return program


def generate_with_choices(seed: int) -> Tuple[Program, GenChoices]:
    """Build the program for ``seed`` along with its draw record."""
    rng = random.Random(seed)
    n = rng.choice(_SIZES)
    arrays = list(_ARRAYS[:rng.randint(2, 3)])
    b = ProgramBuilder(f"fuzz{seed}")
    for name in arrays:
        b.shared(name, (n, n))

    kinds: List[str] = []
    with b.proc("main"):
        _emit_init(b, arrays, n)
        for _ in range(rng.randint(2, 4)):
            kind = rng.choice(_EPOCH_MENU)
            kinds.append(kind)
            _EMITTERS[kind](b, rng, arrays, n)
    program = b.finish()
    return program, GenChoices(seed, n, tuple(arrays), tuple(kinds))


# ---------------------------------------------------------------------------
# epoch emitters — each appends one epoch's worth of statements
# ---------------------------------------------------------------------------

def _emit_init(b: ProgramBuilder, arrays: List[str], n: int) -> None:
    """Aligned initialisation DOALL: every PE fills its own columns."""
    with b.doall("j", 1, n, align=arrays[0], label="init"):
        with b.do("i", 1, n):
            for idx, name in enumerate(arrays):
                b.assign(b.ref(name, "i", "j"),
                         E("i") * (0.25 + 0.125 * idx)
                         + E("j") * (0.5 - 0.25 * idx) - idx * 1.5)


def _term(b: ProgramBuilder, rng: random.Random, src: str, dst: str):
    """One affine read term.  Reads of the epoch's own target stay in the
    exact column (independence); other arrays roam one column away."""
    di = rng.choice((-1, 0, 1))
    dj = 0 if src == dst else rng.choice((-1, 0, 1))
    iv = E("i") + di if di else E("i")
    jv = E("j") + dj if dj else E("j")
    return b.ref(src, iv, jv) * rng.choice(_COEFFS)


def _stencil_body(b: ProgramBuilder, rng: random.Random, arrays: List[str],
                  dst: str) -> None:
    expr = _term(b, rng, rng.choice(arrays), dst)
    for _ in range(rng.randint(1, 3)):
        expr = expr + _term(b, rng, rng.choice(arrays), dst)
    b.assign(b.ref(dst, "i", "j"), expr)


def _emit_stencil(b: ProgramBuilder, rng: random.Random, arrays: List[str],
                  n: int) -> None:
    dst = rng.choice(arrays)
    align = dst if rng.random() < 0.5 else ""
    with b.doall("j", 2, n - 1, align=align, label="stencil"):
        with b.do("i", 2, n - 1):
            if rng.random() < 0.25:
                with b.if_(E("i") < (2 + n) // 2) as node:
                    _stencil_body(b, rng, arrays, dst)
                with b.else_(node):
                    _stencil_body(b, rng, arrays, dst)
            else:
                _stencil_body(b, rng, arrays, dst)


def _emit_copy_reverse(b: ProgramBuilder, rng: random.Random,
                       arrays: List[str], n: int) -> None:
    """Column-reversed copy: the source column coefficient is -1, which
    exercises the negative-coefficient paths of VPG and the verifier's
    affine machinery."""
    dst = rng.choice(arrays)
    others = [a for a in arrays if a != dst] or [dst]
    src = rng.choice(others)
    with b.doall("j", 1, n, label="reverse"):
        with b.do("i", 1, n):
            rhs = b.ref(src, "i", E(n + 1) - E("j")) * rng.choice(_COEFFS)
            if src != dst:
                rhs = rhs + b.ref(dst, "i", "j") * 0.5
            b.assign(b.ref(dst, "i", "j"), rhs)


def _emit_reduction(b: ProgramBuilder, rng: random.Random, arrays: List[str],
                    n: int) -> None:
    """Serial epoch accumulating a whole array into one cell — the reads
    sweep columns written (possibly remotely) by earlier epochs."""
    dst = rng.choice(arrays)
    others = [a for a in arrays if a != dst] or [dst]
    src = rng.choice(others)
    c = rng.choice(_COEFFS)
    with b.do("i", 2, n - 1, label="reduce"):
        with b.do("j", 2, n - 1):
            b.assign(b.ref(dst, 1, 1),
                     b.ref(dst, 1, 1) + b.ref(src, "i", "j") * c)


def _emit_sweep(b: ProgramBuilder, rng: random.Random, arrays: List[str],
                n: int) -> None:
    """Serial first-order recurrence along rows of a fixed column pair —
    the inner-serial-loop shape that software pipelining targets."""
    dst = rng.choice(arrays)
    others = [a for a in arrays if a != dst] or [dst]
    src = rng.choice(others)
    col_d = rng.randint(1, n)
    col_s = rng.randint(1, n)
    c = rng.choice(_COEFFS)
    with b.do("i", 2, n, label="sweep"):
        b.assign(b.ref(dst, "i", col_d),
                 b.ref(dst, E("i") - 1, col_d) * 0.5
                 + b.ref(src, "i", col_s) * c)


def _emit_segment(b: ProgramBuilder, rng: random.Random, arrays: List[str],
                  n: int) -> None:
    """Straight-line serial statements (Fig. 2 case 4: move-back only)."""
    for _ in range(rng.randint(2, 4)):
        dst = rng.choice(arrays)
        src = rng.choice(arrays)
        b.assign(b.ref(dst, rng.randint(1, n), rng.randint(1, n)),
                 b.ref(src, rng.randint(1, n), rng.randint(1, n))
                 * rng.choice(_COEFFS) + rng.choice(_COEFFS))


def _emit_region(b: ProgramBuilder, rng: random.Random, arrays: List[str],
                 n: int) -> None:
    """Serial time loop around DOALLs — region-loop back edges; each
    time step re-reads neighbour columns written by the previous one."""
    dst = rng.choice(arrays)
    others = [a for a in arrays if a != dst] or [dst]
    src = rng.choice(others)
    with b.do("t", 1, 2, label="time"):
        with b.doall("j", 2, n - 1, label="step"):
            with b.do("i", 2, n - 1):
                b.assign(b.ref(dst, "i", "j"),
                         b.ref(src, "i", E("j") - 1) * 0.5
                         + b.ref(src, "i", E("j") + 1) * 0.25
                         + b.ref(dst, "i", "j") * rng.choice(_COEFFS))
        if rng.random() < 0.5 and src != dst:
            with b.doall("j", 2, n - 1, label="feedback"):
                with b.do("i", 2, n - 1):
                    b.assign(b.ref(src, "i", "j"),
                             b.ref(dst, "i", E("j") - 1) * 0.25
                             + b.ref(src, "i", "j") * 0.5)


_EMITTERS = {
    "stencil": _emit_stencil,
    "copy_reverse": _emit_copy_reverse,
    "reduction": _emit_reduction,
    "sweep": _emit_sweep,
    "segment": _emit_segment,
    "region": _emit_region,
}

__all__ = ["GenChoices", "generate_program", "generate_with_choices"]
