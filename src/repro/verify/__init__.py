"""Static coherence-safety verification and randomized conformance
fuzzing for the CCDP pipeline.

* :mod:`repro.verify.safety` — static checker proving the paper's
  coherence rules on transformed IR.
* :mod:`repro.verify.gen` — seeded random affine-program generator.
* :mod:`repro.verify.fuzz` — differential fuzz harness (versions ×
  backends × oracle × static verifier).
* :mod:`repro.verify.minimize` — delta-debugging shrinker for failing
  seeds.
"""

from .fuzz import (FuzzResult, check_program, fuzz_seeds, run_fuzz_cell,
                   shrink_failure)
from .gen import GenChoices, generate_program, generate_with_choices
from .minimize import minimize_program
from .safety import (SafetyReport, Violation, verify_program,
                     verify_structural, verify_transform)

__all__ = [
    "SafetyReport", "Violation",
    "verify_transform", "verify_program", "verify_structural",
    "GenChoices", "generate_program", "generate_with_choices",
    "FuzzResult", "check_program", "fuzz_seeds", "run_fuzz_cell",
    "shrink_failure",
    "minimize_program",
]
