"""Static coherence-safety verification of CCDP-transformed programs.

The paper's correctness argument is operational: cached entries are
invalidated *before* each prefetch issues, dropped prefetches degrade to
bypass-cache fetches, and stale reference analysis covers every read
that may observe a stale copy.  This module turns that argument into a
machine-checked proof obligation over the transformed IR:

1. **Coverage** — re-run stale reference analysis on the *pre-transform*
   program; every potentially-stale read occurrence in the transformed
   program must be covered by a dominating prefetch of its own reference
   (or of its uniformly-generated group), by a dominating invalidation of
   its array, or by demotion to a bypass-cache fetch.  A read covered by
   none is an ``uncovered-stale-read``; a read both bypassed *and*
   prefetched is ``conflicting-coverage`` (the two disposals contradict).
2. **Invalidate-before-prefetch** — every prefetch statement must either
   carry the fused pre-issue invalidation (``invalidate_first``) or be
   dominated by an explicit :class:`InvalidateLines` of its array.
3. **Hoist safety** — no prefetch may have been scheduled above an epoch
   boundary (a DOALL loop that writes its array) or above a write that
   definitely aliases the prefetched reference, relative to the use it
   serves.
4. **Static queue model** — per loop body, the look-ahead prefetch
   footprint (sum of distances) must fit the hardware prefetch queue;
   anything larger is *provably* dropped at steady state and must have
   been bypass-converted by the compiler instead (paper rule 2).
5. **Interprocedural summaries** — a stale read summarised behind a
   serial call requires an invalidation of the array dominating the
   call site.

Dominance here is syntactic program-order dominance over statement
address chains, with two stated assumptions: loop bodies execute at
least once (the validator rejects constant zero-trip headers) and the
two arms of an ``If`` are mutually non-dominating.  Extent arithmetic of
vector prefetches and invalidation ranges is *not* proven statically —
the randomized differential fuzzer (:mod:`repro.verify.fuzz`) covers it
dynamically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.affine import AffineRef, affine_ref
from ..analysis.stale import analyse_stale_references
from ..ir.expr import ArrayRef, RefMode
from ..ir.program import Program
from ..ir.stmt import (Assign, CallStmt, If, InvalidateLines, Loop, LoopKind,
                       PrefetchLine, PrefetchVector, Stmt)

#: one step of a statement address: (role, index) where role is the slot
#: of the parent statement the child lives in.
Chain = Tuple[Tuple[str, int], ...]

_BRANCH_ROLES = ("then", "else")


def _root(node) -> int:
    """Collapse a clone/substitution lineage to its original uid."""
    return node.origin if node.origin is not None else node.uid


def _precedes(a: Chain, b: Chain) -> bool:
    """Strict program-order: does the statement at ``a`` execute before
    the one at ``b``?  False for ancestor/descendant pairs and for
    opposite ``If`` arms (no order is provable)."""
    for (ra, ia), (rb, ib) in zip(a, b):
        if ra == rb and ia == ib:
            continue
        if ra != rb:
            if {ra, rb} == {"preamble", "body"}:
                return ra == "preamble"
            return False  # then vs else: incomparable paths
        return ia < ib
    return False


def _divergence(a: Chain, b: Chain) -> int:
    for k, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            return k
    return min(len(a), len(b))


def _dominates(a: Chain, b: Chain) -> bool:
    """``a`` executes before ``b`` on *every* path that reaches ``b``.
    Loop bodies count as executed (>= 1 trip); anything behind an ``If``
    arm below the divergence point is conditional and does not
    dominate."""
    if not _precedes(a, b):
        return False
    k = _divergence(a, b)
    return all(role not in _BRANCH_ROLES for role, _ in a[k + 1:])


@dataclass
class Violation:
    """One provable break of a CCDP safety rule, with its IR location."""

    kind: str        #: e.g. "uncovered-stale-read", "prefetch-crosses-barrier"
    message: str
    proc: str
    location: str    #: human-readable statement path, e.g. "main/body[2]/doall j/body[0]"
    stmt_uid: int
    array: str = ""
    ref_uid: int = -1

    def describe(self) -> str:
        return f"[{self.kind}] {self.location}: {self.message}"


@dataclass
class SafetyReport:
    """Outcome of one static verification run."""

    version: str
    obligations: int = 0
    covered: Dict[str, int] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)
    unprotected_stale: int = 0   #: informational (naive: stale reads by design)
    notes: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        cov = ", ".join(f"{k}={v}" for k, v in sorted(self.covered.items())) or "none"
        head = (f"{self.version}: {self.obligations} obligation(s), "
                f"coverage {cov}, {len(self.violations)} violation(s)")
        if self.notes:
            head += f" [{self.notes}]"
        lines = [head]
        lines.extend("  " + v.describe() for v in self.violations)
        return "\n".join(lines)


@dataclass
class _Occ:
    """One shared-or-private array reference occurrence."""

    ref: ArrayRef
    stmt: Stmt
    proc: str
    chain: Chain
    loc: str
    is_write: bool


@dataclass
class _PF:
    stmt: Stmt
    proc: str
    chain: Chain
    loc: str
    array: str
    ref: Optional[ArrayRef]      #: PrefetchLine only
    distance: int
    invalidate_first: bool
    for_uid: Optional[int]
    for_root: Optional[int] = None


@dataclass
class _Inv:
    stmt: Stmt
    proc: str
    chain: Chain
    loc: str
    array: str


@dataclass
class _Call:
    stmt: Stmt
    proc: str
    chain: Chain
    loc: str
    root: int


@dataclass
class _Doall:
    stmt: Loop
    proc: str
    chain: Chain
    loc: str
    writes: frozenset


class _Index:
    """Flat occurrence/prefetch/invalidate index of one program, with
    statement address chains for program-order and dominance queries."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.occs: List[_Occ] = []
        self.prefetches: List[_PF] = []
        self.invalidates: List[_Inv] = []
        self.calls: List[_Call] = []
        self.doalls: List[_Doall] = []
        self.uid2ref: Dict[int, ArrayRef] = {}
        self.by_root: Dict[int, List[_Occ]] = {}
        self._arefs: Dict[int, Optional[AffineRef]] = {}
        # Walk only procedures reachable from the entry: inlining leaves
        # the original (now-uncalled) parallel callees behind, and their
        # dead bodies must not raise coverage obligations.
        for name in _reachable_procs(program):
            proc = program.procedures[name]
            self._walk_body(proc.name, proc.body, (), "body", proc.name)
        for pf in self.prefetches:
            if pf.for_uid is not None:
                ref = self.uid2ref.get(pf.for_uid)
                if ref is not None:
                    pf.for_root = _root(ref)

    # -- construction ---------------------------------------------------
    def _walk_body(self, proc: str, body: Sequence[Stmt], prefix: Chain,
                   role: str, path: str) -> None:
        for i, stmt in enumerate(body):
            chain = prefix + ((role, i),)
            loc = f"{path}/{role}[{i}]"
            self._walk_stmt(proc, stmt, chain, loc)

    def _walk_stmt(self, proc: str, stmt: Stmt, chain: Chain, loc: str) -> None:
        if isinstance(stmt, Loop):
            for expr in stmt.expressions():
                self._add_reads(proc, stmt, chain, loc, expr)
            kind = "doall" if stmt.kind == LoopKind.DOALL else "do"
            base = f"{loc}:{kind} {stmt.var}"
            if stmt.kind == LoopKind.DOALL:
                self.doalls.append(_Doall(stmt, proc, chain, loc,
                                          frozenset(_written_arrays(stmt))))
            if stmt.preamble:
                self._walk_body(proc, stmt.preamble, chain, "preamble", base)
            self._walk_body(proc, stmt.body, chain, "body", base)
            return
        if isinstance(stmt, If):
            self._add_reads(proc, stmt, chain, loc, stmt.cond)
            self._walk_body(proc, stmt.then_body, chain, "then", f"{loc}:if")
            self._walk_body(proc, stmt.else_body, chain, "else", f"{loc}:if")
            return
        if isinstance(stmt, Assign):
            if isinstance(stmt.lhs, ArrayRef):
                self._add_occ(stmt.lhs, stmt, proc, chain, loc, is_write=True)
                for sub in stmt.lhs.subscripts:
                    self._add_reads(proc, stmt, chain, loc, sub)
            self._add_reads(proc, stmt, chain, loc, stmt.rhs)
            return
        if isinstance(stmt, CallStmt):
            self.calls.append(_Call(stmt, proc, chain, loc, _root(stmt)))
            for arg in stmt.args:
                self._add_reads(proc, stmt, chain, loc, arg)
            return
        if isinstance(stmt, PrefetchLine):
            self.prefetches.append(_PF(stmt, proc, chain, loc,
                                       stmt.ref.array, stmt.ref,
                                       stmt.distance, stmt.invalidate_first,
                                       stmt.for_uid))
            return
        if isinstance(stmt, PrefetchVector):
            self.prefetches.append(_PF(stmt, proc, chain, loc, stmt.array,
                                       None, 0, stmt.invalidate_first,
                                       stmt.for_uid))
            return
        if isinstance(stmt, InvalidateLines):
            self.invalidates.append(_Inv(stmt, proc, chain, loc, stmt.array))
            return

    def _add_reads(self, proc: str, stmt: Stmt, chain: Chain, loc: str,
                   expr) -> None:
        for node in expr.walk():
            if isinstance(node, ArrayRef):
                self._add_occ(node, stmt, proc, chain, loc, is_write=False)

    def _add_occ(self, ref: ArrayRef, stmt: Stmt, proc: str, chain: Chain,
                 loc: str, *, is_write: bool) -> None:
        occ = _Occ(ref, stmt, proc, chain, loc, is_write)
        self.occs.append(occ)
        self.uid2ref[ref.uid] = ref
        self.by_root.setdefault(_root(ref), []).append(occ)

    # -- queries --------------------------------------------------------
    def aref(self, ref: ArrayRef) -> Optional[AffineRef]:
        if ref.uid not in self._arefs:
            decl = self.program.arrays.get(ref.array)
            self._arefs[ref.uid] = affine_ref(ref, decl) if decl is not None else None
        return self._arefs[ref.uid]


def _reachable_procs(program: Program) -> List[str]:
    """Entry procedure plus everything transitively called from it."""
    seen: List[str] = []
    work = [program.entry]
    while work:
        name = work.pop()
        if name in seen or name not in program.procedures:
            continue
        seen.append(name)
        stack: List[Stmt] = list(program.procedures[name].body)
        while stack:
            s = stack.pop()
            if isinstance(s, CallStmt):
                work.append(s.name)
            for body in s.bodies():
                stack.extend(body)
    return seen


def _written_arrays(stmt: Stmt) -> List[str]:
    names = []
    stack: List[Stmt] = [stmt]
    while stack:
        s = stack.pop()
        if isinstance(s, Assign) and isinstance(s.lhs, ArrayRef):
            names.append(s.lhs.array)
        for body in s.bodies():
            stack.extend(body)
    return names


def _definitely_aliases(a: Optional[AffineRef], b: Optional[AffineRef]) -> bool:
    """Definite (must-) aliasing: identical affine form in every
    dimension, constants included.  Deliberately *not* a may-alias test —
    the hoist check must never flag the legal stencil pattern of
    prefetching ``a(i+d)`` across a write of ``a(i)``."""
    if a is None or b is None or a.array != b.array:
        return False
    return (len(a.dims) == len(b.dims)
            and all(x.same_shape(y) and x.const == y.const
                    for x, y in zip(a.dims, b.dims)))


def _earliest(occs: List[_Occ]) -> _Occ:
    best = occs[0]
    for occ in occs[1:]:
        if _precedes(occ.chain, best.chain):
            best = occ
    return best


# ---------------------------------------------------------------------------
# obligations
# ---------------------------------------------------------------------------

def _stale_obligations(original: Program):
    """Stale reference analysis on the pre-transform program, keyed by
    *root* uid so obligations survive cloning and scheduling rewrites.

    The clone+inline mirrors the driver's own preprocessing: both start
    from the same original statements, so their origin chains collapse
    to the same roots."""
    from ..coherence.inline import inline_parallel_calls

    pre = original.clone()
    inline_parallel_calls(pre)
    stale = analyse_stale_references(pre)
    reads: Dict[int, object] = {}
    calls: Dict[Tuple[int, str], object] = {}
    for info in stale.stale_reads.values():
        if info.summarised_call is not None:
            calls[(_root(info.stmt), info.decl.name)] = info
        else:
            reads[_root(info.ref)] = info
    return reads, calls, len(stale.stale_reads)


# ---------------------------------------------------------------------------
# the checker
# ---------------------------------------------------------------------------

def verify_transform(original: Program, transformed: Program,
                     config=None, version: str = "ccdp") -> SafetyReport:
    """Prove the CCDP safety obligations of ``transformed`` against the
    stale-reference analysis of ``original``; returns a
    :class:`SafetyReport` whose ``violations`` list is empty iff the
    transform is provably coherent under this checker's model."""
    from ..coherence.config import CCDPConfig

    config = config or CCDPConfig()
    index = _Index(transformed)
    read_obl, call_obl, n_stale = _stale_obligations(original)
    report = SafetyReport(version=version,
                          obligations=len(read_obl) + len(call_obl))

    _check_coverage(index, read_obl, report)
    _check_call_invalidations(index, call_obl, report)
    _check_invalidate_before_prefetch(index, report)
    _check_hoists(index, report)
    _check_queue_model(index, config, report)
    return report


def verify_structural(program: Program, version: str) -> SafetyReport:
    """Version-aware wrapper for the non-CCDP versions, whose coherence
    contracts make stale-coverage obligations vacuous: ``seq`` has one
    PE, ``base`` never caches shared data, and ``naive`` promises
    nothing (its stale reads are the experiment).  Only the structural
    prefetch rules are checked — untransformed programs contain no
    prefetches, so they verify trivially clean."""
    index = _Index(program)
    report = SafetyReport(version=version, obligations=0,
                          notes=f"coverage vacuous for version {version!r}")
    if version == "naive":
        _, _, n_stale = _stale_obligations(program)
        report.unprotected_stale = n_stale
    _check_invalidate_before_prefetch(index, report)
    _check_hoists(index, report)
    return report


def verify_program(program: Program, version: str = "ccdp",
                   config=None) -> SafetyReport:
    """Verify one source program under one version's coherence contract,
    running the CCDP transform first when the version demands it."""
    if version == "ccdp":
        from ..coherence.config import CCDPConfig
        from ..coherence.driver import ccdp_transform

        config = config or CCDPConfig()
        transformed, _ = ccdp_transform(program, config)
        return verify_transform(program, transformed, config, version)
    return verify_structural(program, version)


# -- rule 1: stale-read coverage -------------------------------------------

_MECH_ORDER = ("prefetch", "group", "bypass", "invalidate")


def _coverage_of(index: _Index, occ: _Occ) -> List[str]:
    mechanisms = []
    if occ.ref.mode == RefMode.BYPASS:
        mechanisms.append("bypass")
    root = _root(occ.ref)
    occ_aref = index.aref(occ.ref)
    for pf in index.prefetches:
        if pf.proc != occ.proc or not _dominates(pf.chain, occ.chain):
            continue
        if pf.for_root == root:
            mechanisms.append("prefetch")
        elif pf.array == occ.ref.array:
            if pf.ref is None:
                # a vector prefetch of the same array: group-padded block
                mechanisms.append("group")
            else:
                pf_aref = index.aref(pf.ref)
                if (occ_aref is not None and pf_aref is not None
                        and occ_aref.uniformly_generated_with(pf_aref)):
                    mechanisms.append("group")
    for inv in index.invalidates:
        if (inv.proc == occ.proc and inv.array == occ.ref.array
                and _dominates(inv.chain, occ.chain)):
            mechanisms.append("invalidate")
            break
    return mechanisms


def _check_coverage(index: _Index, read_obl: Dict[int, object],
                    report: SafetyReport) -> None:
    for root, info in sorted(read_obl.items()):
        occs = [o for o in index.by_root.get(root, []) if not o.is_write]
        if not occs:
            report.violations.append(Violation(
                "lost-stale-ref",
                f"stale read of {info.decl.name!r} (root uid {root}) has no "
                f"occurrence in the transformed program",
                proc="", location="<missing>", stmt_uid=-1,
                array=info.decl.name, ref_uid=root))
            continue
        for occ in occs:
            mechanisms = _coverage_of(index, occ)
            if not mechanisms:
                report.violations.append(Violation(
                    "uncovered-stale-read",
                    f"potentially-stale read {occ.ref!r} is neither "
                    f"prefetched, invalidated, nor bypass-converted",
                    proc=occ.proc, location=occ.loc, stmt_uid=occ.stmt.uid,
                    array=occ.ref.array, ref_uid=occ.ref.uid))
                continue
            if "bypass" in mechanisms and "prefetch" in mechanisms:
                report.violations.append(Violation(
                    "conflicting-coverage",
                    f"read {occ.ref!r} is bypass-converted yet still served "
                    f"by a prefetch — the disposals contradict",
                    proc=occ.proc, location=occ.loc, stmt_uid=occ.stmt.uid,
                    array=occ.ref.array, ref_uid=occ.ref.uid))
                continue
            chosen = next(m for m in _MECH_ORDER if m in mechanisms)
            report.covered[chosen] = report.covered.get(chosen, 0) + 1


# -- rule 5: interprocedural summaries -------------------------------------

def _check_call_invalidations(index: _Index, call_obl, report: SafetyReport) -> None:
    for (call_root, array), info in sorted(call_obl.items(),
                                           key=lambda kv: kv[0]):
        sites = [c for c in index.calls if c.root == call_root]
        if not sites:
            report.violations.append(Violation(
                "lost-stale-ref",
                f"stale summarised call (root uid {call_root}) reading "
                f"{array!r} has no call site in the transformed program",
                proc="", location="<missing>", stmt_uid=-1, array=array,
                ref_uid=call_root))
            continue
        for call in sites:
            if any(inv.proc == call.proc and inv.array == array
                   and _dominates(inv.chain, call.chain)
                   for inv in index.invalidates):
                report.covered["invalidate"] = report.covered.get("invalidate", 0) + 1
            else:
                report.violations.append(Violation(
                    "call-missing-invalidate",
                    f"call {getattr(call.stmt, 'name', '?')!r} reads stale "
                    f"{array!r} in its callee but no invalidation of "
                    f"{array!r} dominates the call",
                    proc=call.proc, location=call.loc, stmt_uid=call.stmt.uid,
                    array=array, ref_uid=call_root))


# -- rule 2: invalidate-before-prefetch ------------------------------------

def _check_invalidate_before_prefetch(index: _Index, report: SafetyReport) -> None:
    for pf in index.prefetches:
        if pf.invalidate_first:
            continue
        if any(inv.proc == pf.proc and inv.array == pf.array
               and _dominates(inv.chain, pf.chain)
               for inv in index.invalidates):
            continue
        report.violations.append(Violation(
            "prefetch-missing-invalidate",
            f"prefetch of {pf.array!r} issues without a prior invalidation "
            f"of its line (no fused invalidate, no dominating explicit one)",
            proc=pf.proc, location=pf.loc, stmt_uid=pf.stmt.uid,
            array=pf.array))


# -- rule 3: hoist safety --------------------------------------------------

def _check_hoists(index: _Index, report: SafetyReport) -> None:
    for pf in index.prefetches:
        if pf.for_root is None:
            continue
        served = [o for o in index.by_root.get(pf.for_root, [])
                  if not o.is_write and o.proc == pf.proc
                  and _precedes(pf.chain, o.chain)]
        if not served:
            continue
        use = _earliest(served)
        for doall in index.doalls:
            if (doall.proc == pf.proc and pf.array in doall.writes
                    and _precedes(pf.chain, doall.chain)
                    and _precedes(doall.chain, use.chain)):
                report.violations.append(Violation(
                    "prefetch-crosses-barrier",
                    f"prefetch of {pf.array!r} was hoisted above the epoch "
                    f"boundary at {doall.loc} (a DOALL that writes "
                    f"{pf.array!r}); the prefetched copy goes stale before "
                    f"its use at {use.loc}",
                    proc=pf.proc, location=pf.loc, stmt_uid=pf.stmt.uid,
                    array=pf.array, ref_uid=use.ref.uid))
        if pf.ref is None:
            continue
        pf_aref = index.aref(pf.ref)
        for w in index.occs:
            if (w.is_write and w.proc == pf.proc and w.ref.array == pf.array
                    and _precedes(pf.chain, w.chain)
                    and _precedes(w.chain, use.chain)
                    and _definitely_aliases(pf_aref, index.aref(w.ref))):
                report.violations.append(Violation(
                    "prefetch-past-dependent-write",
                    f"prefetch of {pf.ref!r} was hoisted above the write "
                    f"{w.ref!r} at {w.loc} that definitely aliases it; the "
                    f"prefetched value predates the write its use at "
                    f"{use.loc} must observe",
                    proc=pf.proc, location=pf.loc, stmt_uid=pf.stmt.uid,
                    array=pf.array, ref_uid=w.ref.uid))


# -- rule 4: static queue model --------------------------------------------

def _check_queue_model(index: _Index, config, report: SafetyReport) -> None:
    slots = config.machine.prefetch_queue_slots
    groups: Dict[Tuple[str, Chain, str], List[_PF]] = {}
    for pf in index.prefetches:
        if pf.distance <= 0:
            continue  # straight-line prefetches retire at their use
        key = (pf.proc, pf.chain[:-1], pf.chain[-1][0])
        groups.setdefault(key, []).append(pf)
    for (proc, _, _), pfs in sorted(groups.items(), key=lambda kv: kv[0][0]):
        outstanding = sum(pf.distance for pf in pfs)
        if outstanding > slots:
            pf = pfs[0]
            report.violations.append(Violation(
                "queue-overflow",
                f"{len(pfs)} look-ahead prefetch(es) keep {outstanding} "
                f"lines outstanding at steady state but the queue holds "
                f"{slots}; the overflow is provably dropped and must be "
                f"bypass-converted instead (rule 2)",
                proc=proc, location=pf.loc, stmt_uid=pf.stmt.uid,
                array=pf.array))


__all__ = [
    "Violation", "SafetyReport",
    "verify_transform", "verify_program", "verify_structural",
]
