"""Differential conformance fuzzing for the whole CCDP pipeline.

One fuzz *cell* takes a generator seed and cross-checks everything the
repo promises about that program:

1. the CCDP transform's output passes the static safety verifier
   (:mod:`.safety`) with zero violations;
2. for every fuzzed version (the scheme registry's ``fuzz`` flag:
   seq/base/ccdp/naive plus the hardware protocols mesi and dir), the
   batched backend is bit-exact against the reference interpreter —
   stats, memory, full machine-event traces and metrics timelines —
   with the shadow coherence oracle armed on both;
3. a traced reference run's event stream folds back to the machine's
   live counters (:func:`repro.obs.fold.reconcile`);
4. final shared arrays agree bit-exactly across seq and every coherent
   parallel version — base, ccdp, mesi and dir (seq runs on one PE,
   per the harness convention) — each of which records zero stale
   hits, and the naive version — whenever it happens to see no stale
   value — also matches;
5. whenever naive *does* record stale hits, ccdp must still be clean on
   the same program: the transform protected what the cache alone
   would have corrupted.

A cell failure carries every mismatch string; :func:`shrink_failure`
delta-debugs the seed down to a minimal reproducer and serializes it
through the IR printer.  Cells are pure functions of (seed, n_pes), so
:func:`fuzz_seeds` fans them out through the sweep farm
(:mod:`repro.farm`) — the same journaled work queue as the experiment
sweep, which makes long campaigns resumable (``--farm-dir``/
``--resume``) and isolates crashing seeds via retry + quarantine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..coherence import CCDPConfig, ccdp_transform
from ..ir.program import Program
from ..machine.params import t3d
from ..runtime import SCHEMES, Version, run_program
from .gen import GenChoices, generate_with_choices
from .minimize import minimize_program
from .safety import verify_transform

#: default PE count for the parallel versions (seq always runs on 1)
DEFAULT_PES = 4

#: versions the differential battery exercises, straight from the
#: scheme registry (dir-lp/dir-pp opt out: they share the directory
#: code path and would only add cost per cell).
FUZZ_VERSIONS = tuple(v for v in Version.ALL if SCHEMES[v].fuzz)

#: fuzzed parallel versions that must match seq bit-exactly with zero
#: stale hits (every coherent scheme except the 1-PE seq baseline).
COHERENT_FUZZ = tuple(v for v in FUZZ_VERSIONS
                      if v in Version.COHERENT and v != Version.SEQ)


@dataclass
class FuzzResult:
    """Outcome of one fuzz cell (picklable — crosses the pool boundary)."""

    seed: int
    n_pes: int
    choices: str = ""                       #: GenChoices.describe()
    failures: Tuple[str, ...] = ()
    naive_stale: int = 0                    #: stale hits the cache alone took
    trace_events: int = 0                   #: events diffed across backends
    error: str = ""                         #: traceback when the cell crashed

    @property
    def ok(self) -> bool:
        return not self.failures and not self.error

    def describe(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        tail = f" ({len(self.failures)} failure(s))" if self.failures else ""
        if self.error:
            tail = f" (crashed: {self.error.strip().splitlines()[-1]})"
        return (f"seed {self.seed}: {verdict}{tail} "
                f"[naive_stale={self.naive_stale}, "
                f"trace_events={self.trace_events}]")


def check_program(program: Program, n_pes: int = DEFAULT_PES,
                  collect: Optional[dict] = None) -> List[str]:
    """Run the full differential battery on ``program``; returns the
    (possibly empty) list of failure strings.  ``collect``, when given,
    receives side-channel observations (naive stale hits, trace sizes)
    for reporting."""
    from ..harness.equivalence import compare_backends
    from ..obs import Tracer
    from ..obs.fold import reconcile

    failures: List[str] = []
    params = t3d(n_pes)
    config = CCDPConfig(machine=params)
    transformed, _ = ccdp_transform(program, config)

    report = verify_transform(program, transformed, config=config)
    for violation in report.violations:
        failures.append(f"verifier: {violation.describe()}")

    finals: Dict[str, Dict[str, np.ndarray]] = {}
    stale: Dict[str, int] = {}
    trace_events = 0
    for version in FUZZ_VERSIONS:
        prog_v = transformed if version == Version.CCDP else program
        # Harness convention: the sequential baseline runs on one PE
        # (a multi-PE "seq" run is just an untransformed cached run —
        # i.e. naive — and stale by design).
        params_v = t3d(1 if version == Version.SEQ else n_pes)

        eq = compare_backends(prog_v, params_v, version,
                              oracle=True, trace=True)
        for mismatch in eq.mismatches:
            failures.append(f"backend[{version}]: {mismatch}")
        trace_events += eq.trace_events

        tracer = Tracer()
        result = run_program(prog_v, params_v, version,
                             oracle=True, tracer=tracer)
        for mismatch in reconcile(tracer.events, result.machine):
            failures.append(f"fold[{version}]: {mismatch}")
        finals[version] = {name: values.copy() for name, values
                          in result.machine.memory.values.items()}
        stale[version] = result.machine.stats.total().stale_hits

    for version in COHERENT_FUZZ:
        if stale[version]:
            failures.append(f"stale[{version}]: {stale[version]} stale hits "
                            f"(must be coherent)")
        for name, expected in finals[Version.SEQ].items():
            got = finals[version][name]
            if not np.array_equal(expected, got):
                bad = int(np.flatnonzero(expected != got)[0])
                failures.append(
                    f"values[{version}]: {name}[{bad}] = {got[bad]!r}, "
                    f"seq has {expected[bad]!r}")
    # The naive version keeps stale lines by design; it must only agree
    # with seq on the (rare) programs where no stale value was consumed.
    if stale[Version.NAIVE] == 0:
        for name, expected in finals[Version.SEQ].items():
            if not np.array_equal(expected, finals[Version.NAIVE][name]):
                failures.append(
                    f"values[naive]: {name} differs from seq despite "
                    f"zero stale hits")

    if collect is not None:
        collect["naive_stale"] = stale[Version.NAIVE]
        collect["trace_events"] = trace_events
    return failures


def run_fuzz_cell(payload: Tuple[int, int]) -> FuzzResult:
    """Pool worker: one (seed, n_pes) cell.  Never raises — a crashing
    cell ships its traceback home in :attr:`FuzzResult.error`."""
    import traceback

    seed, n_pes = payload
    try:
        program, choices = generate_with_choices(seed)
        observed: dict = {}
        failures = check_program(program, n_pes, collect=observed)
        return FuzzResult(seed=seed, n_pes=n_pes,
                          choices=choices.describe(),
                          failures=tuple(failures),
                          naive_stale=observed.get("naive_stale", 0),
                          trace_events=observed.get("trace_events", 0))
    except Exception:
        return FuzzResult(seed=seed, n_pes=n_pes,
                          error=traceback.format_exc())


def fuzz_key(seed: int, n_pes: int) -> str:
    """Content key of one fuzz cell (seed fully determines the program;
    the battery is pure given (seed, n_pes))."""
    from ..farm import SCHEMA
    from ..harness.progcache import content_key

    return content_key("fuzz", SCHEMA, seed, n_pes)


def _fuzz_failure(result: FuzzResult) -> Optional[str]:
    """Farm ``failure_of`` hook: a *crashed* cell is an infrastructure
    failure worth retrying/quarantining; differential mismatches are
    findings — they commit as results."""
    return result.error or None


def fuzz_seeds(seeds: Sequence[int], n_pes: int = DEFAULT_PES,
               jobs: int = 1, progress=None, farm=None,
               collect: Optional[dict] = None) -> List[FuzzResult]:
    """Run one cell per seed, optionally across ``jobs`` processes.
    Results come back in seed order regardless of worker scheduling.

    With a :class:`repro.farm.FarmConfig` the campaign is journaled:
    a killed run resumes replaying only unfinished seeds, finished
    seeds dedup across campaigns sharing a farm dir, and a crashing
    cell is retried with seeded backoff then quarantined (surfacing as
    a :class:`FuzzResult` with :attr:`FuzzResult.error` set) instead of
    aborting the campaign.  ``collect`` receives the farm's
    :class:`~repro.farm.FarmResult` under ``"farm"``.
    """
    from ..farm import FarmConfig, Job, run_farm

    payloads = [(seed, n_pes) for seed in seeds]
    jobs_list = [Job(index=i, key=fuzz_key(seed, n_pes),
                     payload=(seed, n_pes), desc=f"seed {seed}")
                 for i, (seed, n_pes) in enumerate(payloads)]

    def farm_progress(done, total, outcome):
        progress(done, total, outcome.result if outcome.result is not None
                 else FuzzResult(seed=jobs_list[outcome.job.index]
                                 .payload[0],
                                 n_pes=n_pes, error=outcome.error or ""))

    result = run_farm(run_fuzz_cell, jobs_list,
                      farm or FarmConfig(jobs=jobs),
                      failure_of=_fuzz_failure,
                      progress=farm_progress if progress is not None
                      else None)
    if collect is not None:
        collect["farm"] = result
    out: List[FuzzResult] = []
    for (seed, pes), outcome in zip(payloads, result.outcomes):
        if outcome.quarantined:
            out.append(FuzzResult(seed=seed, n_pes=pes,
                                  error=outcome.error or
                                  f"quarantined ({outcome.reason})"))
        else:
            out.append(outcome.result)
    return out


def shrink_failure(seed: int, n_pes: int = DEFAULT_PES,
                   max_trials: int = 400) -> Tuple[Program, str]:
    """Delta-debug a failing seed to a minimal reproducer.

    The predicate is "the differential battery still fails" — any
    failure keeps a candidate, so the shrinker may walk from one
    manifestation to another of the same seed, but never to a passing
    program.  Returns the shrunk program and its DSL text."""
    from ..ir.printer import format_program

    program, _ = generate_with_choices(seed)
    small = minimize_program(
        program, lambda p: bool(check_program(p, n_pes)),
        max_trials=max_trials)
    return small, format_program(small)


__all__ = ["COHERENT_FUZZ", "DEFAULT_PES", "FUZZ_VERSIONS", "FuzzResult",
           "check_program", "run_fuzz_cell", "fuzz_key", "fuzz_seeds",
           "shrink_failure"]
