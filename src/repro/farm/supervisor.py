"""Supervised execution of content-addressed jobs with journaling.

:func:`run_farm` is the single entry point every grid in the repo fans
out through (the experiment sweep, the fuzz campaign, ``run_pool``).
It layers three guarantees over a plain process pool:

**Dedup / resume.**  With a ``farm_dir``, jobs whose content key has a
committed ``done`` record are served from the result store — after the
stored bytes are re-verified against the journaled digest — instead of
being executed.  That one mechanism is both ``--resume`` (a killed
sweep replays only unfinished cells) and cross-sweep deduplication
(two sweeps sharing a farm dir share every identical cell).  Because
results are matched by *content key* and merged by the caller's job
order, resuming can never perturb merge ordering, and a resumed record
is the byte-identical pickle the original worker produced.

**Supervision.**  In pool mode each worker is a dedicated process with
its own inbox/outbox, so the supervisor always knows which job a
worker holds: a result is committed, a worker that exceeds the per-job
wall clock is killed and respawned (``timeout``), and a worker that
dies without reporting — ``kill -9``, segfault, ``os._exit`` — is
detected by liveness polling (``crash``).  A worker slot's queues die
with it, so a killed worker can never corrupt another slot's channel.

**Retry / quarantine.**  Failed attempts are retried with seeded
jittered exponential backoff (:func:`~.jobs.backoff_delay`) up to
``max_retries`` times, then the job is *quarantined*: reported in the
outcome (and the journal) instead of aborting the rest of the grid.
Workers are pure functions of their payload — the sweep re-derives
per-cell fault seeds from content, not from attempt numbers — so a
retried job is bit-identical to a first-try job by construction.

Determinism contract: the in-process path (``jobs <= 1``, no timeout)
pickle-round-trips every result exactly as a pool transfer would, so
``jobs=1``, ``jobs=N``, killed-and-resumed, and deduped runs all yield
byte-identical result pickles.
"""

from __future__ import annotations

import heapq
import logging
import math
import multiprocessing
import os
import pickle
import queue
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.events import validate_event
from .jobs import (FarmConfig, FarmError, FarmResult, Job, JobOutcome,
                   backoff_delay)
from .journal import Journal

log = logging.getLogger("repro.farm")

#: supervisor poll interval while waiting on busy workers (seconds)
_POLL = 0.02

FailureFn = Callable[[object], Optional[str]]
ProgressFn = Callable[[int, int, JobOutcome], None]


# -- worker process side -------------------------------------------------------

def _worker_main(worker, inbox, outbox, parent_pid: int) -> None:
    """Worker loop: run payloads from ``inbox``, ship pickled results to
    ``outbox``.  Exits on the ``None`` sentinel or when the parent
    disappears (so a ``kill -9`` of the sweep never leaves orphans
    spinning)."""
    while True:
        try:
            task = inbox.get(timeout=1.0)
        except queue.Empty:
            if os.getppid() != parent_pid:
                return
            continue
        except (EOFError, OSError):
            return
        if task is None:
            return
        key, attempt, payload = task
        try:
            result = worker(payload)
            outbox.put((key, attempt, "ok", pickle.dumps(result)))
        except BaseException:
            outbox.put((key, attempt, "error", traceback.format_exc()))


class _Slot:
    """One supervised worker: process + private channels."""

    def __init__(self, worker, ctx, parent_pid: int) -> None:
        self.inbox = ctx.Queue()
        self.outbox = ctx.Queue()
        self.proc = ctx.Process(target=_worker_main,
                                args=(worker, self.inbox, self.outbox,
                                      parent_pid),
                                daemon=True)
        self.proc.start()

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(2.0)
            if self.proc.is_alive():
                self.proc.kill()
                self.proc.join(2.0)
        for q in (self.inbox, self.outbox):
            q.close()
            q.cancel_join_thread()

    def stop(self) -> None:
        try:
            self.inbox.put(None)
        except (ValueError, OSError):
            pass
        self.proc.join(2.0)
        self.kill()


# -- the farm ------------------------------------------------------------------

class _Farm:
    def __init__(self, worker, jobs: Sequence[Job], config: FarmConfig,
                 failure_of: Optional[FailureFn],
                 progress: Optional[ProgressFn]) -> None:
        config.validate()
        self.worker = worker
        self.jobs = list(jobs)
        self.config = config
        self.failure_of = failure_of
        self.progress = progress
        self.result = FarmResult()
        self.outcomes: Dict[int, JobOutcome] = {}
        self.journal: Optional[Journal] = None
        self.store = None
        if config.farm_dir:
            # Lazy import: repro.harness pulls in the sweep module, which
            # imports this package back (the farm is its execution layer).
            from ..harness.progcache import DiskStore
            self.journal = Journal(config.farm_dir)
            if config.resume and not self.journal.exists():
                raise FarmError(
                    f"--resume: no journal at {self.journal.path}")
            self.store = DiskStore(self.journal.results_root)

    # -- event / bookkeeping helpers -----------------------------------
    def _emit(self, event: tuple) -> None:
        validate_event(event)
        self.result.events.append(event)

    def _journal(self, record: dict, sync: bool = False) -> None:
        if self.journal is not None:
            self.journal.append(record, sync=sync)

    def _finish(self, outcome: JobOutcome) -> None:
        self.outcomes[outcome.job.index] = outcome
        if outcome.quarantined:
            self.result.quarantined += 1
        elif outcome.cached:
            self.result.cached += 1
        else:
            self.result.executed += 1
        if self.progress is not None:
            self.progress(len(self.outcomes), len(self.jobs), outcome)

    # -- replay / dedup phase ------------------------------------------
    def _partition(self) -> List[Job]:
        """Serve journal-resolved jobs; return the ones still to run."""
        states = self.journal.replay() if self.journal else {}
        to_run: List[Job] = []
        requeued = set()
        for job in self.jobs:
            state = states.get(job.key)
            if state is not None and state.done and self.store is not None:
                result = self.store.get(job.key, expect_digest=state.digest)
                if result is not None:
                    err = self.failure_of(result) if self.failure_of else None
                    if err is None:
                        self._emit(("farm_resume", job.key, state.digest))
                        self._finish(JobOutcome(job, result=result,
                                                cached=True))
                        continue
                    log.warning("farm: stored result for %s fails the "
                                "failure check; re-running", job.key[:16])
            if state is not None and state.quarantined is not None:
                if self.config.requeue_quarantined:
                    if job.key not in requeued:
                        self._journal({"ev": "requeue", "key": job.key},
                                      sync=True)
                        requeued.add(job.key)
                else:
                    q = state.quarantined
                    reason = q.get("reason") or "error"
                    self._emit(("farm_quarantine", job.key,
                                int(q.get("attempts", 0)), reason))
                    self._finish(JobOutcome(
                        job, error=q.get("error"),
                        attempts=int(q.get("attempts", 0)),
                        cached=True, quarantined=True, reason=reason))
                    continue
            to_run.append(job)
        return to_run

    # -- attempt lifecycle (shared by both executors) ------------------
    def _lease(self, job: Job, attempt: int) -> None:
        self._journal({"ev": "lease", "key": job.key, "attempt": attempt,
                       "job": job.desc})
        self._emit(("farm_lease", job.key, attempt))

    def _commit(self, job: Job, attempt: int, data: bytes) -> None:
        if self.store is not None:
            digest = self.store.put_bytes(job.key, data)
            self._journal({"ev": "done", "key": job.key, "attempt": attempt,
                           "digest": digest}, sync=True)
        self._emit(("farm_done", job.key, attempt, 0))
        self._finish(JobOutcome(job, result=pickle.loads(data),
                                attempts=attempt))

    def _attempt_failed(self, job: Job, attempt: int, reason: str,
                        error: str) -> Optional[float]:
        """Record a failed attempt.  Returns the backoff delay before the
        next attempt, or ``None`` if the job is now quarantined."""
        self._journal({"ev": "fail", "key": job.key, "attempt": attempt,
                       "reason": reason, "error": error})
        if attempt > self.config.max_retries:
            self._journal({"ev": "quarantine", "key": job.key,
                           "attempts": attempt, "reason": reason,
                           "error": error}, sync=True)
            self._emit(("farm_quarantine", job.key, attempt, reason))
            self._finish(JobOutcome(job, error=error, attempts=attempt,
                                    quarantined=True, reason=reason))
            return None
        delay = backoff_delay(job.key, attempt,
                              base=self.config.backoff_base,
                              cap=self.config.backoff_cap,
                              seed=self.config.backoff_seed)
        self._journal({"ev": "retry", "key": job.key, "attempt": attempt + 1,
                       "delay_ms": int(round(delay * 1000))})
        self._emit(("farm_retry", job.key, attempt + 1,
                    int(round(delay * 1000)), reason))
        self.result.retries += 1
        return delay

    def _handle_result(self, job: Job, attempt: int, kind: str,
                       data) -> Optional[float]:
        """Classify one worker report; same return as ``_attempt_failed``,
        with ``math.inf`` standing for "committed, no retry"."""
        if kind == "ok":
            err = self.failure_of(pickle.loads(data)) \
                if self.failure_of else None
            if err is None:
                self._commit(job, attempt, data)
                return math.inf
            return self._attempt_failed(job, attempt, "error", err)
        return self._attempt_failed(job, attempt, "error", data)

    # -- in-process executor (jobs <= 1, no timeout) -------------------
    def _run_serial(self, to_run: Sequence[Job]) -> None:
        for job in to_run:
            attempt = 1
            while True:
                self._lease(job, attempt)
                try:
                    data = ("ok", pickle.dumps(self.worker(job.payload)))
                except BaseException:
                    data = ("error", traceback.format_exc())
                delay = self._handle_result(job, attempt, data[0], data[1])
                if delay is None or delay is math.inf:
                    break
                time.sleep(delay)
                attempt += 1

    # -- supervised pool executor --------------------------------------
    def _run_pool(self, to_run: Sequence[Job]) -> None:
        config = self.config
        n_workers = max(1, min(config.jobs, len(to_run)))
        ctx = multiprocessing.get_context("fork")
        parent_pid = os.getpid()
        slots: Dict[int, _Slot] = {
            wid: _Slot(self.worker, ctx, parent_pid)
            for wid in range(n_workers)}
        idle: List[int] = list(range(n_workers))
        busy: Dict[int, Tuple[Job, int, float]] = {}
        ready: List[Tuple[int, Job, int]] = [(job.index, job, 1)
                                             for job in to_run]
        ready.reverse()  # pop() from the end -> job order
        delayed: List[Tuple[float, int, Job, int]] = []
        target = len(self.outcomes) + len(to_run)

        def respawn(wid: int) -> None:
            slots[wid].kill()
            slots[wid] = _Slot(self.worker, ctx, parent_pid)

        def after_attempt(wid: int, job: Job, attempt: int,
                          delay: Optional[float]) -> None:
            if delay is not None and delay is not math.inf:
                heapq.heappush(delayed,
                               (time.monotonic() + delay, job.index, job,
                                attempt + 1))

        try:
            while len(self.outcomes) < target:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, _, job, attempt = heapq.heappop(delayed)
                    ready.append((job.index, job, attempt))
                while ready and idle:
                    wid = idle.pop()
                    if not slots[wid].proc.is_alive():
                        respawn(wid)
                    _, job, attempt = ready.pop()
                    self._lease(job, attempt)
                    slots[wid].inbox.put((job.key, attempt, job.payload))
                    deadline = now + config.cell_timeout \
                        if config.cell_timeout else math.inf
                    busy[wid] = (job, attempt, deadline)

                progressed = False
                for wid in list(busy):
                    slot = slots[wid]
                    job, attempt, deadline = busy[wid]
                    msg = None
                    try:
                        msg = slot.outbox.get_nowait()
                    except queue.Empty:
                        pass
                    except (EOFError, OSError):
                        msg = None
                    if msg is not None:
                        del busy[wid]
                        idle.append(wid)
                        key, att, kind, data = msg
                        delay = self._handle_result(job, att, kind, data)
                        after_attempt(wid, job, att, delay)
                        progressed = True
                    elif not slot.proc.is_alive():
                        del busy[wid]
                        code = slot.proc.exitcode
                        respawn(wid)
                        idle.append(wid)
                        delay = self._attempt_failed(
                            job, attempt, "crash",
                            f"worker process died without reporting "
                            f"(exitcode {code})")
                        after_attempt(wid, job, attempt, delay)
                        progressed = True
                    elif time.monotonic() >= deadline:
                        del busy[wid]
                        respawn(wid)
                        idle.append(wid)
                        delay = self._attempt_failed(
                            job, attempt, "timeout",
                            f"cell exceeded --cell-timeout "
                            f"{config.cell_timeout}s wall clock")
                        after_attempt(wid, job, attempt, delay)
                        progressed = True
                if not progressed and len(self.outcomes) < target:
                    if busy or not delayed:
                        time.sleep(_POLL)
                    else:
                        time.sleep(min(0.5, max(_POLL,
                                                delayed[0][0] -
                                                time.monotonic())))
        finally:
            for slot in slots.values():
                slot.stop()

    # -- entry ---------------------------------------------------------
    def run(self) -> FarmResult:
        try:
            to_run = self._partition()
            if to_run:
                if self.config.jobs > 1 or \
                        self.config.cell_timeout is not None:
                    self._run_pool(to_run)
                else:
                    self._run_serial(to_run)
        finally:
            if self.journal is not None:
                self.journal.close()
        self.result.outcomes = [self.outcomes[job.index] for job in self.jobs]
        if self.config.farm_dir:
            self._export_events()
        return self.result

    def _export_events(self) -> None:
        from ..obs.export import events_to_jsonl
        path = os.path.join(self.config.farm_dir, "events.jsonl")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(events_to_jsonl(self.result.events))


def run_farm(worker, jobs: Sequence[Job],
             config: Optional[FarmConfig] = None,
             failure_of: Optional[FailureFn] = None,
             progress: Optional[ProgressFn] = None) -> FarmResult:
    """Execute ``jobs`` under ``config`` (see module docstring).

    ``worker`` must be a module-level callable of one payload (so it
    crosses the process boundary by reference).  ``failure_of`` maps a
    worker *return value* to a failure string (or ``None``) for workers
    that ship failures inside their results instead of raising — those
    failures get the same retry/quarantine treatment as exceptions.
    ``progress`` is called as ``progress(done, total, outcome)`` once
    per finalized job, journal-served jobs included.

    Duplicate keys within one call are executed independently (their
    results are identical by content addressing); across calls sharing
    a ``farm_dir`` they dedup through the journal.
    """
    if len(jobs) != len({job.index for job in jobs}):
        raise FarmError("job indices must be unique within one farm run")
    return _Farm(worker, jobs, config or FarmConfig(), failure_of,
                 progress).run()


__all__ = ["run_farm", "FailureFn", "ProgressFn"]
