"""Append-only JSONL journal: the farm's crash-safe source of truth.

Every job state transition is one JSON line appended to
``<farm_dir>/journal.jsonl``:

``lease``
    ``{"ev": "lease", "key": K, "attempt": n, "job": desc}`` — an
    attempt started.  Advisory (buffered write): losing it to a crash
    only loses bookkeeping, never a result.
``fail``
    ``{"ev": "fail", "key": K, "attempt": n, "reason": r, "error": t}``
    — attempt ``n`` failed (``reason`` in :data:`~.jobs.FAIL_REASONS`).
``retry``
    ``{"ev": "retry", "key": K, "attempt": n, "delay_ms": d}`` — attempt
    ``n`` was scheduled after a backoff of ``d`` milliseconds.
``done``
    ``{"ev": "done", "key": K, "attempt": n, "digest": sha256}`` — the
    result was durably stored.  **Committed**: written after the result
    file's atomic rename, flushed and ``fsync``\\ ed, so a ``done`` line
    that survives a ``kill -9`` always points at a verifiable result.
``quarantine``
    ``{"ev": "quarantine", "key": K, "attempts": n, "reason": r,
    "error": t}`` — the job exhausted its retry budget.  Committed
    (fsync) so resumes do not silently re-run known-poisoned cells.
``requeue``
    ``{"ev": "requeue", "key": K}`` — a quarantine was explicitly
    cleared (``--requeue-quarantined``); the key runs fresh.

Replay (:meth:`Journal.replay`) folds the lines into per-key
:class:`JobState` in order.  Durability rules make replay simple and
safe after any crash point:

* a **torn final line** (the process died mid-append) is ignored;
* any other malformed line is skipped with a warning — the journal is
  a cache of work done, so dropping a record only costs recomputation,
  never correctness;
* a ``done`` digest is a *claim*, verified against the result store
  before it is trusted (see :mod:`repro.farm.supervisor`), so a result
  file lost or corrupted out from under the journal demotes the key
  back to pending instead of poisoning the resume.
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

log = logging.getLogger("repro.farm")

JOURNAL_NAME = "journal.jsonl"
RESULTS_DIR = "results"

#: journal record types (the ``ev`` field)
RECORD_EVS = frozenset({"lease", "fail", "retry", "done", "quarantine",
                        "requeue"})

#: bound per-record error text so a crash-looping cell cannot balloon
#: the journal (full tracebacks still reach the caller in-memory)
ERROR_TEXT_LIMIT = 4000


@dataclass
class JobState:
    """Folded journal state of one content key."""

    attempts: int = 0                    #: highest attempt ever leased
    digest: Optional[str] = None         #: result digest when done
    quarantined: Optional[dict] = None   #: the quarantine record, if standing
    last_error: Optional[str] = None
    last_reason: Optional[str] = None

    @property
    def done(self) -> bool:
        return self.digest is not None


class Journal:
    """Append-only JSONL journal over one farm directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.path = self.root / JOURNAL_NAME
        self.results_root = self.root / RESULTS_DIR
        self.root.mkdir(parents=True, exist_ok=True)
        self._fh = None

    # -- writing -------------------------------------------------------
    def _handle(self):
        if self._fh is None:
            self._heal_tear()
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def _heal_tear(self) -> None:
        """Seal a torn final line before the first append of this session.

        A kill mid-append leaves a partial line with no trailing newline;
        appending straight after it would glue the next record onto the
        tear, and the merged line — no longer the *final* line once more
        records follow — would be skipped as malformed on replay, losing
        a committed record to a crash that happened *before* it.  A lone
        newline turns the tear back into an ignorable torn line."""
        try:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                torn = fh.read(1) != b"\n"
        except (OSError, ValueError):
            return  # missing or empty journal: nothing to heal
        if torn:
            with open(self.path, "ab") as fh:
                fh.write(b"\n")
                fh.flush()
                os.fsync(fh.fileno())

    def append(self, record: dict, sync: bool = False) -> None:
        """Append one record; ``sync=True`` makes it a *commit* (flush +
        ``fsync``) — the durability point the resume contract rests on."""
        ev = record.get("ev")
        if ev not in RECORD_EVS:
            raise ValueError(f"unknown journal record ev: {ev!r}")
        if "error" in record and record["error"]:
            record = {**record, "error": record["error"][-ERROR_TEXT_LIMIT:]}
        fh = self._handle()
        fh.write(json.dumps({"ts": round(time.time(), 3), **record},
                            sort_keys=True, separators=(",", ":")) + "\n")
        if sync:
            fh.flush()
            os.fsync(fh.fileno())

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -------------------------------------------------------
    def exists(self) -> bool:
        return self.path.exists()

    def records(self) -> List[dict]:
        """Parse every journal line, tolerating a torn final line (the
        ``kill -9`` artifact) and warning about any other damage."""
        if not self.path.exists():
            return []
        out: List[dict] = []
        lines = self.path.read_text(encoding="utf-8", errors="replace") \
                         .splitlines()
        for lineno, line in enumerate(lines, 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines):
                    log.debug("journal %s: ignoring torn final line %d",
                              self.path, lineno)
                else:
                    log.warning("journal %s: skipping malformed line %d",
                                self.path, lineno)
                continue
            if not isinstance(record, dict) or \
                    record.get("ev") not in RECORD_EVS or "key" not in record:
                log.warning("journal %s: skipping unrecognised record at "
                            "line %d", self.path, lineno)
                continue
            out.append(record)
        return out

    def replay(self) -> Dict[str, JobState]:
        """Fold the journal into per-key :class:`JobState`, in order."""
        states: Dict[str, JobState] = {}
        for record in self.records():
            state = states.setdefault(record["key"], JobState())
            ev = record["ev"]
            if ev == "lease":
                state.attempts = max(state.attempts,
                                     int(record.get("attempt", 0)))
            elif ev == "fail":
                state.last_error = record.get("error")
                state.last_reason = record.get("reason")
            elif ev == "done":
                state.digest = record.get("digest")
                state.quarantined = None
            elif ev == "quarantine":
                state.quarantined = record
                state.last_error = record.get("error", state.last_error)
                state.last_reason = record.get("reason", state.last_reason)
            elif ev == "requeue":
                state.quarantined = None
                state.attempts = 0
        return states


__all__ = ["JOURNAL_NAME", "RESULTS_DIR", "RECORD_EVS", "JobState",
           "Journal"]
