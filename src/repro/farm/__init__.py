"""Resumable sweep farm: journaled work queue with worker supervision.

The execution layer every grid in the repo fans out through — the
experiment sweep (:mod:`repro.harness.sweep`), the fuzz campaign
(:mod:`repro.verify.fuzz`) and the generic ``run_pool``.  Cells are
content-addressed jobs; an append-only JSONL journal + atomic result
store make any run resumable after a ``kill -9`` with byte-identical
results; a supervisor adds per-cell timeouts, crashed-worker
detection, seeded backoff retries and quarantine.  See DESIGN.md §7.
"""

from .jobs import (FAIL_REASONS, SCHEMA, FarmConfig, FarmError, FarmResult,
                   Job, JobOutcome, backoff_delay)
from .journal import JobState, Journal
from .supervisor import run_farm

__all__ = ["SCHEMA", "FAIL_REASONS", "FarmConfig", "FarmError",
           "FarmResult", "Job", "JobOutcome", "backoff_delay",
           "JobState", "Journal", "run_farm"]
