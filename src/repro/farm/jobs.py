"""Job model for the sweep farm: content-addressed work units.

A *job* is one unit of pure work: a picklable payload executed by a
module-level worker function, identified by a **content key** — the
SHA-256 of every input that affects the result
(:func:`repro.harness.progcache.content_key`).  Content addressing is
what makes the farm's persistence sound: a journal entry saying "key K
is done with digest D" is a claim about *inputs*, so it stays valid
across process restarts, across sweeps sharing a ``--farm-dir``, and
across any interleaving of workers.

The scheduling knobs live in :class:`FarmConfig`; the retry backoff is
**seeded** (:func:`backoff_delay`) so a retried job waits the same
deterministic, jittered interval in every run — timing never feeds back
into results (workers are pure), but deterministic schedules keep farm
journals reproducible enough to diff.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Journal/result-store schema version.  Mixed into every content key a
#: farm client derives, so a schema change can never resurrect stale
#: results from an old farm directory.
SCHEMA = 1

#: Why an attempt failed (journal ``fail``/``quarantine`` records and
#: ``farm_retry``/``farm_quarantine`` event ``reason`` fields).
#: ``error`` = the worker raised or returned a failure result,
#: ``timeout`` = the attempt exceeded the per-cell wall clock,
#: ``crash`` = the worker process died without reporting (killed,
#: segfault, ``os._exit``).
FAIL_REASONS = ("error", "timeout", "crash")


class FarmError(RuntimeError):
    """Farm-level misuse or unrecoverable state (not a job failure)."""


@dataclass(frozen=True)
class Job:
    """One schedulable unit of work."""

    index: int      #: position in the caller's merge order
    key: str        #: content key (sha256 hex) of everything the result depends on
    payload: object  #: picklable argument for the worker function
    desc: str = ""   #: human label for journals/progress ("mxm/ccdp@4")


@dataclass
class JobOutcome:
    """Final state of one job after the farm is done with it."""

    job: Job
    result: object = None            #: worker return value (None if quarantined)
    error: Optional[str] = None      #: last attempt's failure text
    attempts: int = 0                #: attempts actually executed this run
    cached: bool = False             #: served from the journal, not executed
    quarantined: bool = False
    reason: Optional[str] = None     #: FAIL_REASONS entry when quarantined

    def describe(self) -> str:
        tag = self.job.desc or self.job.key[:12]
        if self.quarantined:
            last = (self.error or "").strip().splitlines()
            return (f"{tag}: QUARANTINED after {self.attempts} attempt(s) "
                    f"[{self.reason}]" + (f" ({last[-1]})" if last else ""))
        via = "journal" if self.cached else f"{self.attempts} attempt(s)"
        return f"{tag}: ok ({via})"


@dataclass(frozen=True)
class FarmConfig:
    """Execution policy for one :func:`repro.farm.run_farm` call."""

    jobs: int = 1                       #: worker processes (<=1 = in-process)
    farm_dir: Optional[str] = None      #: journal + result store root (None = ephemeral)
    resume: bool = False                #: require an existing journal to resume
    cell_timeout: Optional[float] = None  #: per-attempt wall clock (needs workers)
    max_retries: int = 0                #: retries after the first attempt
    backoff_base: float = 0.25          #: first retry delay (seconds), pre-jitter
    backoff_cap: float = 30.0           #: delay ceiling (seconds)
    backoff_seed: int = 0               #: jitter seed (deterministic schedules)
    requeue_quarantined: bool = False   #: re-execute journal-quarantined keys

    def validate(self) -> None:
        if self.resume and not self.farm_dir:
            raise FarmError("resume requires a farm_dir")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise FarmError(f"cell_timeout must be > 0: {self.cell_timeout}")
        if self.max_retries < 0:
            raise FarmError(f"max_retries must be >= 0: {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise FarmError("backoff_base/backoff_cap must be >= 0")


@dataclass
class FarmResult:
    """Everything one farm run produced, in job (merge) order."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    events: List[tuple] = field(default_factory=list)  #: obs farm_* tuples
    executed: int = 0      #: jobs that ran at least one attempt here
    cached: int = 0        #: jobs served from the journal/result store
    retries: int = 0       #: retry attempts scheduled this run
    quarantined: int = 0   #: jobs that ended quarantined (incl. replayed)

    @property
    def failed(self) -> List[JobOutcome]:
        return [o for o in self.outcomes if o.quarantined]

    def summary(self) -> str:
        return (f"farm: {self.executed} executed, {self.cached} from journal, "
                f"{self.retries} retries, {self.quarantined} quarantined")


def backoff_delay(key: str, attempt: int, base: float = 0.25,
                  cap: float = 30.0, seed: int = 0) -> float:
    """Deterministic jittered exponential backoff before retry
    ``attempt + 1`` of ``key``.

    Doubles per failed attempt with a seeded jitter factor in
    ``[0.75, 1.25)`` — derived from ``(seed, key, attempt)`` alone, so
    the same cell backs off identically in every run, and the jitter
    band is narrow enough that successive delays are strictly
    increasing (``1.25 < 2 * 0.75``), which the CI smoke asserts.
    """
    h = zlib.crc32(f"{seed}|{key}|{attempt}".encode()) & 0xFFFFFFFF
    jitter = 0.75 + 0.5 * (h / 2**32)
    return min(cap, base * (2.0 ** (attempt - 1)) * jitter)


__all__ = ["SCHEMA", "FAIL_REASONS", "FarmError", "Job", "JobOutcome",
           "FarmConfig", "FarmResult", "backoff_delay"]
