"""Iteration scheduling of DOALL loops across PEs.

Static schedules are computed up front; dynamic (self-scheduled) loops
are simulated chunk-by-chunk by the epoch executor using the greedy
earliest-clock rule, which is what a remote fetch&add counter produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Chunk:
    """A contiguous run of iterations ``lo, lo+step, ..., <= hi``
    (empty when lo > hi for positive step)."""

    lo: int
    hi: int
    step: int = 1

    @property
    def count(self) -> int:
        if self.step > 0:
            return max(0, (self.hi - self.lo) // self.step + 1)
        return max(0, (self.lo - self.hi) // (-self.step) + 1)

    def iterations(self) -> range:
        return range(self.lo, self.hi + (1 if self.step > 0 else -1), self.step)


def iteration_values(lo: int, hi: int, step: int) -> range:
    if step == 0:
        raise ValueError("loop step cannot be zero")
    return range(lo, hi + (1 if step > 0 else -1), step)


def block_partition(lo: int, hi: int, step: int, n_pes: int) -> List[Chunk]:
    """CRAFT-style block partition: PE p gets the p-th contiguous chunk
    of ceil(trip/P) iterations.  Matches BLOCK data distribution so that
    iteration i lands on the owner of block index i."""
    values = iteration_values(lo, hi, step)
    trip = len(values)
    chunk_size = -(-trip // n_pes) if trip else 0
    chunks: List[Chunk] = []
    for p in range(n_pes):
        start = p * chunk_size
        end = min(trip, start + chunk_size)
        if start >= end:
            chunks.append(Chunk(lo=1, hi=0, step=1))  # empty
        else:
            chunks.append(Chunk(values[start], values[end - 1], step))
    return chunks


def owner_partition(lo: int, hi: int, step: int, n_pes: int,
                    owner_of: "callable") -> List[List[int]]:
    """Owner-computes partition (CRAFT ``doshared``): iteration ``v`` runs
    on ``owner_of(v)`` — the PE owning index ``v`` of the aligned array's
    distributed axis.  For BLOCK distributions the per-PE lists are
    contiguous runs."""
    out: List[List[int]] = [[] for _ in range(n_pes)]
    for value in iteration_values(lo, hi, step):
        out[owner_of(value)].append(value)
    return out


def cyclic_partition(lo: int, hi: int, step: int, n_pes: int) -> List[List[int]]:
    """Round-robin iteration assignment."""
    values = list(iteration_values(lo, hi, step))
    return [values[p::n_pes] for p in range(n_pes)]


def dynamic_chunks(lo: int, hi: int, step: int, chunk_size: int) -> List[Chunk]:
    """Split the iteration space into self-scheduling chunks."""
    values = iteration_values(lo, hi, step)
    out: List[Chunk] = []
    for start in range(0, len(values), chunk_size):
        end = min(len(values), start + chunk_size)
        out.append(Chunk(values[start], values[end - 1], step))
    return out


__all__ = ["Chunk", "iteration_values", "block_partition", "owner_partition",
           "cyclic_partition", "dynamic_chunks"]
