"""Runtime: interpreters executing IR programs on the machine model,
iteration schedulers, and execution configurations (the scheme registry:
SEQ / BASE / CCDP / NAIVE software versions plus the MESI / directory
hardware-protocol baselines)."""

from .exec_config import (SCHEMES, Backend, ExecutionConfig, SchemeSpec,
                          Version, scheme_names)
from .interp import (EpochRecord, Interpreter, InterpreterError, RunResult,
                     make_interpreter, run_program)
from .schedulers import (Chunk, block_partition, cyclic_partition,
                         dynamic_chunks, iteration_values)

__all__ = [
    "SCHEMES", "SchemeSpec", "scheme_names",
    "Backend", "ExecutionConfig", "Version",
    "EpochRecord", "Interpreter", "InterpreterError", "RunResult",
    "make_interpreter", "run_program",
    "Chunk", "block_partition", "cyclic_partition", "dynamic_chunks",
    "iteration_values",
]
