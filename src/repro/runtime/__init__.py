"""Runtime: interpreters executing IR programs on the machine model,
iteration schedulers, and execution configurations (SEQ / BASE / CCDP /
NAIVE program versions)."""

from .exec_config import ExecutionConfig, Version
from .interp import (EpochRecord, Interpreter, InterpreterError, RunResult,
                     run_program)
from .schedulers import (Chunk, block_partition, cyclic_partition,
                         dynamic_chunks, iteration_values)

__all__ = [
    "ExecutionConfig", "Version",
    "EpochRecord", "Interpreter", "InterpreterError", "RunResult", "run_program",
    "Chunk", "block_partition", "cyclic_partition", "dynamic_chunks",
    "iteration_values",
]
