"""Runtime: interpreters executing IR programs on the machine model,
iteration schedulers, and execution configurations (SEQ / BASE / CCDP /
NAIVE program versions)."""

from .exec_config import Backend, ExecutionConfig, Version
from .interp import (EpochRecord, Interpreter, InterpreterError, RunResult,
                     make_interpreter, run_program)
from .schedulers import (Chunk, block_partition, cyclic_partition,
                         dynamic_chunks, iteration_values)

__all__ = [
    "Backend", "ExecutionConfig", "Version",
    "EpochRecord", "Interpreter", "InterpreterError", "RunResult",
    "make_interpreter", "run_program",
    "Chunk", "block_partition", "cyclic_partition", "dynamic_chunks",
    "iteration_values",
]
