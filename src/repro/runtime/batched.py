"""Batched execution backend: bulk chunk servicing for affine loop bodies.

The reference interpreter services every memory reference with one
:meth:`~repro.machine.machine.Machine.read` / ``write`` call — exact, but
slow (dict lookups, NumPy scalar indexing, closure dispatch per event).
This backend recognises *batchable chunks* — innermost loops (serial inner
loops and innermost DOALL chunks) whose bodies are straight-line affine
assignments — and services each whole chunk in two passes:

1. a **value pass**: a lean sequential Python loop that computes every
   right-hand side and applies every memory write with *exactly* the
   reference semantics (same operator lambdas, same register-promotion
   dynamics, same write-through version bumps) but no machine bookkeeping;
2. a **timing pass**: vectorised NumPy over the chunk's affine address
   vectors — one warm :func:`~repro.machine.batchops.classify_events` call
   replays the chunk's read trace against the direct-mapped cache, latency
   tables turn hit/miss outcomes and owner vectors into cycle sums, and the
   cache's final state is committed with bulk line refills.

Exactness contract: a committed chunk leaves the machine in *bit-identical*
state (array values, versions, cache tags/data, per-PE stats, clocks) to
the reference interpreter.  This rests on invariants that are checked at
**bind time**, before anything is mutated; a chunk that fails any guard
falls back to the reference per-iteration path, so the fallback is always
exact too:

* the loop body is all-``Assign``/``PrefetchLine``, every array reference
  affine, bounds array-free, no short-circuit ``and``/``or``
  (data-dependent event order);
* every affine-form variable is bound to a Python int and every subscript
  stays in bounds across the whole chunk (else the reference path raises
  the exact ``IndexError`` mid-chunk; prefetch subscripts are exempt —
  beyond-edge look-ahead is legal and replayed as an issue-cost no-op);
* no *stale* resident cache line intersects a line the chunk touches (so
  chunk reads return memory values and no stale events can occur — one
  PE's chunk runs with no interleaved remote writes, and its own
  write-through stores keep cache and memory in step; stale residue on
  lines the chunk never touches is left exactly as-is by the commit);
* all event costs are integral, which makes bulk cycle summation exact
  (adding integers to a float clock is associative below 2**53);
* race checking and read tracing are off (those need per-event order).

Chunks whose events can interact with prefetch state — they contain
``PrefetchLine`` statements, or leftover prefetch-queue entries /
dropped-line marks alias the chunk's cacheable reads — route their timing
through :func:`~repro.machine.batchops.replay_chunk`: an exact scan over
the pre-bound event stream against *shadow* copies of the PE's tags,
queue and dropped set, committed wholesale afterwards (invalidate-before-
prefetch, queue coalesce/capacity/reclaim, capacity-drop → bypass-fetch
degradation, extract and vector-transfer stalls all replayed
bit-exactly).  The scan flags the one inexpressible case — a
write-through into a line ghosted by an in-chunk invalidation — as a
hazard, falling back before anything is mutated.

Chunks containing ``PrefetchVector``/``InvalidateLines`` statements,
``If``s, calls or nested loops are never planned; they run on the
reference path unchanged.
"""

from __future__ import annotations

import keyword
import math
from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..analysis.affine import AffineForm, affine_ref
from ..ir.expr import (ArrayRef, BinOp, Expr, FloatConst, IntConst,
                       IntrinsicCall, RefMode, SymConst, UnaryOp, VarRef)
from ..ir.stmt import (Assign, InvalidateLines, Loop, LoopKind, PrefetchLine,
                       PrefetchVector, ScheduleKind, Stmt)
from ..machine.batchops import (OUT_HIT, RE_COST, RE_PF, RE_READ, RE_WRITE,
                                REC_EXTRACT, REC_HIT, REC_KILL_FLAG, REC_MISS,
                                REC_NONE, REC_PF_COALESCE, REC_PF_ISSUE,
                                STALL_VECTOR, bulk_fill_lines,
                                classify_events_multi, read_latency_table,
                                replay_chunk, stale_lines,
                                uncached_read_latency_table,
                                write_latency_table)
from ..machine.pe import PE, STAT_FIELDS
from ..machine.prefetchq import PrefetchEntry, VectorTransfer
from .interp import Interpreter

#: Minimum chunk size (iterations x memory events) worth the bind overhead.
MIN_BATCH_EVENTS = 16

#: Upper bound on distinct chunk-memo entries per interpreter (each entry
#: holds its flats plus a handful of outcome variants; the cap is a
#: memory backstop, not a tuning knob — real workloads sit far below it).
MEMO_CAP = 8192

_EMPTY_I64 = np.empty(0, dtype=np.int64)

#: Upper bound on recorded machine-state variants per plane-epoch key
#: (a memory backstop like MEMO_CAP; iterative solvers reuse 1-2).
PLANE_VARIANT_CAP = 128

#: Float-valued PEStats fields.  Plane replay restores them as recorded
#: absolutes: the signature pins their pre-epoch values, so the recorded
#: post-epoch values are exactly what the live float adds would produce.
_PLANE_FLOAT = ("busy_cycles", "idle_cycles", "vector_stall_cycles",
                "prefetch_late_cycles")

#: Integer PEStats fields, replayed as add_bulk deltas.
_PLANE_INT = tuple(f for f in STAT_FIELDS if f not in _PLANE_FLOAT)

#: Sentinel for "field unchanged over the epoch" in per-PE replay
#: records (None is a legal last_prefetch_pe value, so it cannot serve).
_SAME = object()

#: Every event kind a committed plane epoch can emit.  The plane engages
#: under a tracer only when it keeps bare counts for all of them — full
#: event tuples need per-event synthesis in reference order, which is
#: inherently per-PE work.
_PLANE_KINDS = ("read_hit", "read_miss", "bypass_fetch", "write",
                "pf_issue", "pf_coalesce", "pf_drop", "pf_complete",
                "invalidate", "vector_transfer")


class _PlaneEntry:
    """One recorded DOALL epoch: precomputed cross-PE scatters (shared
    memory, stacked cache planes) plus small per-PE state records, to
    re-apply whenever the pre-epoch signature recurs."""

    __slots__ = ("mem_idx", "mem_vals", "mem_vers",
                 "tag_flat", "tag_val",
                 "row_flat", "row_data", "row_vers", "cache_full",
                 "clk_idx", "clk_val",
                 "per_pe", "chain", "refs", "chunks", "falls", "reasons",
                 "stale_reads", "stale_examples", "counts")

    def __init__(self, mem_idx, mem_vals, mem_vers, tag_flat, tag_val,
                 row_flat, row_data, row_vers, cache_full, clk_idx,
                 clk_val, per_pe, chain, refs, chunks, falls, reasons,
                 stale_reads, stale_examples, counts) -> None:
        self.mem_idx = mem_idx
        self.mem_vals = mem_vals
        self.mem_vers = mem_vers
        self.tag_flat = tag_flat
        self.tag_val = tag_val
        self.row_flat = row_flat
        self.row_data = row_data
        self.row_vers = row_vers
        self.cache_full = cache_full
        self.clk_idx = clk_idx
        self.clk_val = clk_val
        self.per_pe = per_pe
        self.chain = chain
        self.refs = refs
        self.chunks = chunks
        self.falls = falls
        self.reasons = reasons
        self.stale_reads = stale_reads
        self.stale_examples = stale_examples
        self.counts = counts


def _seq_div(a, b):
    """Division exactly as the reference value closures perform it."""
    if isinstance(a, int) and isinstance(b, int):
        return int(a / b)  # Fortran integer division truncates
    return a / b


class _Slot:
    """One memory-touching operation of the loop body (one per iteration).

    ``role`` is 'cr' (cacheable read), 'ur' (uncached/bypass read), 'w'
    (write) or 'pf' (line prefetch).  ``address`` is the 0-based
    flat-element affine form; ``dims`` are the 1-based per-dimension forms
    used for bounds checking."""

    __slots__ = ("role", "array", "base", "shared", "bypass", "craft",
                 "cacheable", "var_coeff", "env_coeffs", "const0",
                 "dim_checks", "owner_table", "extra", "inval")

    def __init__(self, role: str, array: str, base: int, shared: bool,
                 bypass: bool, craft: bool, cacheable: bool,
                 address: AffineForm, dims, shape, var: str,
                 sym_value, owner_table, extra: float) -> None:
        self.role = role
        self.array = array
        self.base = base
        self.shared = shared
        self.bypass = bypass
        self.craft = craft
        self.cacheable = cacheable
        self.var_coeff = address.coeff(var)
        self.env_coeffs = tuple((n, c) for n, c in address.coeffs if n != var)
        self.const0 = address.const + sum(
            c * sym_value(s) for s, c in address.sym_coeffs)
        # Per-dimension (const0, env_coeffs, var_coeff, extent) for bounds.
        checks = []
        for form, extent in zip(dims, shape):
            dconst = form.const + sum(c * sym_value(s)
                                      for s, c in form.sym_coeffs)
            denv = tuple((n, c) for n, c in form.coeffs if n != var)
            checks.append((dconst, denv, form.coeff(var), extent))
        self.dim_checks = tuple(checks)
        self.owner_table = owner_table  # int16 per flat element, shared only
        self.extra = extra              # CRAFT overhead folded into latency
        self.inval = False              # 'pf' only: invalidate before issue

    def variables(self) -> Set[str]:
        out = {n for n, _ in self.env_coeffs}
        for _, denv, _, _ in self.dim_checks:
            out |= {n for n, _ in denv}
        return out

    def bind(self, env: dict, values: np.ndarray,
             vmin: int, vmax: int) -> Optional[np.ndarray]:
        """Flat element vector for the chunk, or ``None`` when any subscript
        leaves the array bounds (the reference path will raise exactly)."""
        for dconst, denv, dcoeff, extent in self.dim_checks:
            d0 = dconst
            for name, c in denv:
                d0 += c * env[name]
            at_min = d0 + dcoeff * vmin
            at_max = d0 + dcoeff * vmax
            if not (1 <= at_min <= extent and 1 <= at_max <= extent):
                return None
        const = self.const0
        for name, c in self.env_coeffs:
            const += c * env[name]
        return const + self.var_coeff * values

    def bind_pf(self, env: dict,
                values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(flat vector, in-bounds mask) for a prefetch slot.  Beyond-edge
        look-ahead is legal for prefetches (the reference charges the bare
        issue cost and drops), so out-of-bounds iterations are masked
        rather than rejecting the chunk; their flat entry is a harmless 0."""
        mask = np.ones(len(values), dtype=bool)
        for dconst, denv, dcoeff, extent in self.dim_checks:
            d0 = dconst
            for name, c in denv:
                d0 += c * env[name]
            dval = d0 + dcoeff * values
            mask &= (1 <= dval) & (dval <= extent)
        const = self.const0
        for name, c in self.env_coeffs:
            const += c * env[name]
        flat = const + self.var_coeff * values
        if not mask.all():
            flat = np.where(mask, flat, 0)
        return flat, mask

    def bounds2(self, env: dict, outer: str, vmin: int, vmax: int,
                omin: int, omax: int) -> bool:
        """Box bounds check for a fused chunk.  The per-dimension forms are
        affine in both loop variables, so checking the four box corners —
        whose outer values are actual chunk members — decides exactly what
        the per-row check decides."""
        for dconst, denv, dcoeff, extent in self.dim_checks:
            d0 = dconst
            ocoeff = 0
            for name, c in denv:
                if name == outer:
                    ocoeff = c
                else:
                    d0 += c * env[name]
            lo = d0 \
                + (dcoeff * vmin if dcoeff >= 0 else dcoeff * vmax) \
                + (ocoeff * omin if ocoeff >= 0 else ocoeff * omax)
            hi = d0 \
                + (dcoeff * vmax if dcoeff >= 0 else dcoeff * vmin) \
                + (ocoeff * omax if ocoeff >= 0 else ocoeff * omin)
            if not (1 <= lo and hi <= extent):
                return False
        return True

    def bind2(self, env: dict, V: np.ndarray, O: np.ndarray, outer: str,
              vmin: int, vmax: int, omin: int,
              omax: int) -> Optional[np.ndarray]:
        """Fused-chunk variant of :meth:`bind`: one bind over the whole
        (outer, inner) iteration space when every outer row shares the same
        inner bounds."""
        if not self.bounds2(env, outer, vmin, vmax, omin, omax):
            return None
        const = self.const0
        ocoeff = 0
        for name, c in self.env_coeffs:
            if name == outer:
                ocoeff = c
            else:
                const += c * env[name]
        flat = const + self.var_coeff * V
        if ocoeff:
            flat = flat + ocoeff * O
        return flat


class _Plan:
    """Compiled batched form of one innermost loop."""

    __slots__ = ("var", "registers", "final_clear", "value_fns", "slots",
                 "cached_idx", "uncached_idx", "write_idx", "pf_idx",
                 "const_per_iter", "n_events", "env_vars",
                 "touches_shared_cache", "const_before", "tail_const",
                 "assigned", "vec_stmts", "reg_ops", "alias_pairs",
                 "bind_groups", "event_kinds", "seq_fn")

    def __init__(self, var: str, registers: dict, final_clear: bool,
                 value_fns: list, slots: List[_Slot],
                 const_per_iter: float, const_before: Sequence[float],
                 tail_const: float, assigned: Tuple[str, ...],
                 vec_stmts, reg_ops) -> None:
        self.var = var
        self.registers = registers
        self.final_clear = final_clear
        self.value_fns = value_fns
        self.slots = slots
        self.const_before = np.asarray(const_before, dtype=np.float64)
        self.tail_const = tail_const
        self.assigned = assigned
        self.vec_stmts = vec_stmts  # vectorised statement ops, or None
        self.reg_ops = reg_ops      # register-state replay for the epilogue
        self.seq_fn = None          # compiled scalar value pass, or None
        # Same-array (write, other) slot pairs that the bind-time alias
        # check must prove elementwise-identical or fully disjoint before
        # the vectorised value pass may run.  Pairs with identical affine
        # forms bind to identical vectors under every environment, so they
        # are provably safe here and skipped at run time.
        self.alias_pairs = [
            (w, j) for w, sw in enumerate(slots) if sw.role == "w"
            for j, sj in enumerate(slots)
            if j != w and sj.role != "pf" and sj.array == sw.array
            and not (sj.var_coeff == sw.var_coeff
                     and sj.env_coeffs == sw.env_coeffs
                     and sj.const0 == sw.const0)]
        # Slots sharing (var_coeff, env_coeffs) bind to vectors that differ
        # only by the constant term under every environment: bind once per
        # group and add the delta.  Unrolled bodies collapse hard here.
        by_form: dict = {}
        for i, s in enumerate(slots):
            by_form.setdefault((s.var_coeff, s.env_coeffs), []).append(i)
        self.bind_groups = [
            (idxs[0],
             [(j, slots[j].const0 - slots[idxs[0]].const0,
               # An identical-form member passes bounds iff the rep does.
               not (slots[j].const0 == slots[idxs[0]].const0
                    and slots[j].dim_checks == slots[idxs[0]].dim_checks))
              for j in idxs[1:]])
            for idxs in by_form.values()]
        self.cached_idx = [i for i, s in enumerate(slots) if s.role == "cr"]
        self.uncached_idx = [i for i, s in enumerate(slots) if s.role == "ur"]
        self.write_idx = [i for i, s in enumerate(slots) if s.role == "w"]
        self.pf_idx = [i for i, s in enumerate(slots) if s.role == "pf"]
        self.const_per_iter = const_per_iter
        self.n_events = len(slots)
        env_vars: Set[str] = set()
        for slot in slots:
            env_vars |= slot.variables()
        self.env_vars = tuple(env_vars)
        self.touches_shared_cache = any(
            s.shared and (s.role == "pf" or (s.cacheable
                                             and s.role in ("cr", "w")))
            for s in slots)
        # Every machine-event kind a chunk of this plan could emit (a
        # conservative superset): the batched backend checks it against
        # the tracer's sampling to pick full synthesis vs counts-only.
        kinds: Set[str] = set()
        if self.cached_idx:
            kinds.update(("read_hit", "read_miss", "pf_complete"))
            if any(slots[i].shared for i in self.cached_idx):
                kinds.add("bypass_fetch")
        if self.uncached_idx:
            kinds.add("bypass_fetch")
        if self.write_idx:
            kinds.add("write")
        if self.pf_idx:
            kinds.update(("pf_issue", "pf_coalesce", "pf_drop"))
            if any(slots[i].inval for i in self.pf_idx):
                kinds.add("invalidate")
        self.event_kinds = frozenset(kinds)


class _MemoEntry:
    """Per-(plan, pe, environment, iteration-vector) chunk memo.

    The bound flat vectors and every derived pure artifact (value-pass
    vectorisability, signature gather indices) are functions of the key
    alone, so they are computed once and reused on every revisit.  The
    *timing outcome* additionally depends on machine state; committed
    outcomes are stored per state signature in ``variants`` (see
    :meth:`BatchedInterpreter._memo_sig`) and replayed bit-exactly when
    the same signature recurs — which is every chunk of a warm re-run,
    and any steady-state chunk whose cache/queue/clock-relative state
    repeats within a run."""

    __slots__ = ("flats", "pf_masks", "V", "vecs_extra", "Tt", "const_total",
                 "row_extra", "vec_safe", "sets_all", "sets_shared",
                 "words_idx", "variants")

    def __init__(self, flats, pf_masks, V, vecs_extra, Tt, const_total,
                 row_extra) -> None:
        self.flats = flats
        self.pf_masks = pf_masks
        self.V = V
        self.vecs_extra = vecs_extra
        self.Tt = Tt
        self.const_total = const_total
        self.row_extra = row_extra
        self.vec_safe: Optional[bool] = None
        self.sets_all: Optional[np.ndarray] = None
        self.sets_shared: Optional[np.ndarray] = None
        self.words_idx: Optional[np.ndarray] = None
        self.variants: Dict[tuple, dict] = {}


class _Ineligible(Exception):
    """Raised during plan compilation when the loop cannot be batched."""


class _SeqIneligible(Exception):
    """Raised while generating the compiled scalar value pass when a
    construct is not expressible; the plan stays valid and the chunk runs
    the closure-chain value pass instead."""


class _VecIneligible(Exception):
    """Raised when a body cannot use the vectorised value pass (the
    sequential value pass still applies)."""


def _to_float(x):
    if isinstance(x, np.ndarray):
        return x.astype(np.float64)
    return float(x)


def _integral(*costs: float) -> bool:
    return all(float(c).is_integer() for c in costs)


class BatchedInterpreter(Interpreter):
    """Interpreter whose innermost loops execute as bulk batched chunks.

    Only the chunk-servicing strategy changes; program compilation, epoch
    control, scheduling and all non-batchable statements run through the
    inherited reference machinery."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._serial_plans: Dict[int, tuple] = {}
        self._doall_plans: Dict[int, Optional[_Plan]] = {}
        self._fused_plans: Dict[int, Optional[tuple]] = {}
        self._seg_plans: Dict[int, Optional[list]] = {}
        self._lat: Dict[tuple, np.ndarray] = {}
        #: chunks serviced in bulk / chunks that fell back at bind time
        self.batch_chunks = 0
        self.batch_fallbacks = 0
        #: per-reason-code fallback counts (see :meth:`_fall`); also records
        #: "tiny_chunk" skips, which are not counted as fallbacks
        self.fallback_reasons: Dict[str, int] = {}
        #: chunks routed to the reference path because fault injection or
        #: the coherence oracle was active (subset of batch_fallbacks)
        self.fault_fallbacks = 0
        #: memory references (reads+writes) serviced by committed chunks
        self.batch_refs = 0
        p = self.params
        #: prefetch replay needs integral issue/extract costs for exact
        #: bulk busy-cycle summation (the clock itself is scanned exactly)
        self._replay_costs_ok = _integral(p.prefetch_issue, p.dtb_setup,
                                          p.prefetch_extract)
        #: compiled chunk memo: (plan, pe, env, iterations) -> _MemoEntry.
        #: Survives warm re-runs (see runtime.plancache) by construction —
        #: every outcome is guarded by a full machine-state signature.
        self._chunk_memo: Dict[tuple, _MemoEntry] = {}
        #: preamble memo: (loop uid, pe, env) -> variants (see _run_preamble)
        self._preamble_memo: Dict[tuple, dict] = {}
        self._preamble_info: Dict[int, Optional[tuple]] = {}
        #: cross-PE plane: DOALL epochs recorded once, then replayed for
        #: all PEs in one commit (see the plane section below)
        self.plane_chunks = 0
        self.plane_refs = 0
        self._plane_on = bool(getattr(self.config, "plane_epochs", True))
        #: plane memo: epoch key -> (shared words index, {sig: _PlaneEntry})
        self._plane_memo: Dict[tuple, tuple] = {}
        #: epoch keys proven not plane-expressible (reference iterations
        #: ran, or effects escaped the recorded diff)
        self._plane_veto: Set[tuple] = set()
        self._plane_line_tab: Optional[tuple] = None
        #: live op log while a recording is in flight (None otherwise)
        self._plane_ops: Optional[list] = None
        self._plane_iter_veto = False
        #: reference iterations admitted by a logged "r" op (see
        #: _plane_log_ref); any unadmitted reference iteration vetoes
        self._plane_iter_allow = 0
        #: refs the logged "r" ops account for in the recording run
        self._plane_ref_refs = 0
        #: recording forces tiny chunks through the batched path so the
        #: whole epoch becomes expressible as committed chunk ops
        self._force_batch = False
        #: epoch chains: one full warm run's (key, entry) sequence, per
        #: tracer mode.  A fresh run that starts from the canonical
        #: reset state replays its mode's chain positionally without
        #: recomputing signatures (the machine trajectory from the reset
        #: state is deterministic).  Keyed by tracer mode because the
        #: recorded entries embed tracer count deltas (or their absence)
        #: — a traced run following an untraced chain would silently
        #: drop every plane count.
        self._plane_traces: dict = {}
        self._plane_trace: Optional[list] = None
        self._plane_build: Optional[list] = None
        self._plane_follow = False
        self._plane_run_tmode = 0
        self._plane_pos = 0
        #: True only between a canonical reset (construction or
        #: plancache._reset) and the next run() — chain mode is sound
        #: only from that state.
        self._plane_fresh = True

    def run(self):
        fresh = self._plane_fresh
        self._plane_fresh = False
        self._plane_pos = 0
        tmode = 0 if self.machine.tracer is None else 1
        self._plane_run_tmode = tmode
        trace = self._plane_traces.get(tmode)
        self._plane_trace = trace
        self._plane_follow = fresh and trace is not None
        self._plane_build = ([] if fresh and self._plane_on
                             and trace is None else None)
        result = super().run()
        if self._plane_build is not None:
            self._plane_traces[tmode] = self._plane_build
            self._plane_build = None
        return result

    # ------------------------------------------------------------------
    # integration points
    # ------------------------------------------------------------------
    def _build_stmt(self, stmt: Stmt):
        if not (isinstance(stmt, Loop) and stmt.kind == LoopKind.SERIAL):
            return super()._build_stmt(stmt)
        # Compile-time context the reference body closures see (captured
        # before super() pushes the loop's own register context).
        outer_ctxs = list(self._reg_stack)
        loop_vars = (set(self._loopvar_stack) | set(self._region_vars)
                     | {stmt.var})
        ref_fn = super()._build_stmt(stmt)
        plan = self._compile_plan(stmt, self._loop_ctx[stmt.uid], outer_ctxs,
                                  loop_vars, final_clear=True)
        if plan is None:
            return ref_fn
        lo_fn = self._compile_expr(stmt.lower)
        hi_fn = self._compile_expr(stmt.upper)
        step_fn = self._compile_expr(stmt.step)
        bound_vars = frozenset(
            n.name for b in (stmt.lower, stmt.upper, stmt.step)
            for n in b.walk() if isinstance(n, VarRef))
        self._serial_plans[stmt.uid] = (plan, lo_fn, hi_fn, step_fn,
                                        bound_vars)

        def run_batched_loop(env: dict, pe: int) -> None:
            # Bounds are array-free (plan eligibility), so evaluating them
            # here charges nothing; the reference fallback re-evaluates the
            # same pure closures.
            lo = int(lo_fn(env, pe))
            hi = int(hi_fn(env, pe))
            step = int(step_fn(env, pe))
            values = range(lo, hi + (1 if step > 0 else -1), step)
            if not self._exec_chunk(plan, env, pe, values):
                if self._plane_ops is not None:
                    self._plane_log_ref(plan, env, pe, values)
                ref_fn(env, pe)

        return run_batched_loop

    def _iterate_doall(self, loop: Loop, env_p: dict, pe: int,
                       values: Sequence[int], run_iteration) -> None:
        # Fused path: a doall whose body is exactly one planned serial loop
        # runs all of this PE's (outer, inner) iterations as ONE bulk trace.
        entry = self._fused_entry(loop)
        if entry is not None and self._exec_fused(loop, entry, env_p, pe,
                                                 values):
            return
        plan = self._doall_plans.get(loop.uid, False)
        if plan is False:
            loop_vars = {loop.var} | set(self._region_vars)
            plan = self._compile_plan(loop, self._loop_ctx[loop.uid], [],
                                      loop_vars, final_clear=False)
            self._doall_plans[loop.uid] = plan
        if plan is not None and self._exec_chunk(plan, env_p, pe, values):
            return
        seg = self._seg_entry(loop)
        if seg is not None:
            self._exec_segmented(loop, seg, env_p, pe, values)
            return
        if plan is not None and self._plane_ops is not None \
                and self._plane_log_ref(plan, env_p, pe, values):
            # The body compiled (every statement is plan-expressible), so
            # the reference iterations below serve exactly the plan's
            # reference stream: the logged op pins their words and the
            # allowance admits them without a plane veto.
            self._plane_iter_allow += len(values)
        for value in values:
            run_iteration(env_p, pe, value)

    def _seg_entry(self, loop: Loop):
        """Segmented-body entry for a DOALL whose body mixes nested serial
        loops with one contiguous run of plain statements (VPENTA's
        solve: forward loop, pivot assigns, backward loop).  The run is
        compiled as its own chunk plan — minus the per-iteration loop
        overhead, which the driver charges at the exact reference point —
        so every reference is served through batched machinery and the
        epoch stays plane-recordable.  None when the body doesn't fit.

        One contiguous segment only: promoted register values may not
        flow between segments, and a single segment starts exactly at the
        iteration-level ``registers.clear()`` the reference path does."""
        entry = self._seg_plans.get(loop.uid, False)
        if entry is not False:
            return entry
        entry = None
        items: list = []
        ok = any(isinstance(s, Loop) for s in loop.body)
        for stmt in loop.body:
            if isinstance(stmt, Loop):
                if stmt.kind != LoopKind.SERIAL:
                    ok = False
                    break
                items.append(("fn", stmt))
            elif isinstance(stmt, (PrefetchVector, InvalidateLines)):
                # No memory references: the per-statement closure keeps
                # coverage honest and the machine diff captures it.
                items.append(("fn", stmt))
            elif isinstance(stmt, (Assign, PrefetchLine)):
                if items and items[-1][0] == "seg":
                    items[-1][1].append(stmt)
                else:
                    items.append(("seg", [stmt]))
            else:
                ok = False
                break
        nseg = sum(1 for item in items if item[0] == "seg")
        if ok and items and nseg <= 1:
            plan = None
            if nseg:
                seg_stmts = next(p for k, p in items if k == "seg")
                shadow = Loop(loop.var, loop.lower, loop.upper, loop.step,
                              seg_stmts, LoopKind.DOALL, loop.schedule)
                loop_vars = {loop.var} | set(self._region_vars)
                plan = self._compile_plan(shadow, self._loop_ctx[loop.uid],
                                          [], loop_vars, final_clear=False,
                                          loop_overhead=False)
            if nseg == 0 or plan is not None:
                compiled = []
                for kind, payload in items:
                    if kind == "fn":
                        compiled.append(
                            ("fn", self._compile_stmt(payload), None))
                    else:
                        compiled.append(
                            ("seg", plan,
                             [self._compile_stmt(s) for s in payload]))
                entry = compiled
        self._seg_plans[loop.uid] = entry
        return entry

    def _exec_segmented(self, loop: Loop, items, env_p: dict, pe: int,
                        values: Sequence[int]) -> None:
        """Run one PE's chunk of a segmented-body DOALL, mirroring the
        reference ``run_iteration`` exactly: bind the loop var, clear the
        body-level registers, charge the loop overhead, then execute the
        body segments in order — plain-statement segments as forced
        one-iteration chunks (reference closures on guard fallback)."""
        machine_pe = self.machine.pes[pe]
        var = loop.var
        overhead = self.params.loop_overhead
        registers = self._loop_ctx[loop.uid].values
        for value in values:
            env_p[var] = value
            registers.clear()
            machine_pe.advance(overhead)
            for kind, a, b in items:
                if kind == "fn":
                    a(env_p, pe)
                    continue
                prev = self._force_batch
                self._force_batch = True
                try:
                    done = self._exec_chunk(a, env_p, pe, (value,))
                finally:
                    self._force_batch = prev
                if not done:
                    if self._plane_ops is not None:
                        self._plane_log_ref(a, env_p, pe, (value,))
                    for fn in b:
                        fn(env_p, pe)

    def _fused_entry(self, loop: Loop):
        """Serial-plan tuple for a fusable doall body, else None (cached)."""
        entry = self._fused_plans.get(loop.uid, False)
        if entry is not False:
            return entry
        entry = None
        if len(loop.body) == 1 and isinstance(loop.body[0], Loop):
            inner = self._serial_plans.get(loop.body[0].uid)
            if inner is not None:
                plan, _, _, _, bound_vars = inner
                # Vector value pass only (the sequential pass would need
                # per-group register churn), no prefetch slots (replay is
                # per-chunk), and the inner bounds must not depend on
                # scalars the body itself assigns.
                if (plan.vec_stmts is not None and not plan.pf_idx
                        and bound_vars.isdisjoint(plan.assigned)):
                    entry = inner
        self._fused_plans[loop.uid] = entry
        return entry

    def _exec_fused(self, loop: Loop, entry, env: dict, pe: int,
                    values: Sequence[int]) -> bool:
        """Run every (outer j, inner i) iteration of this PE's chunk as one
        bulk trace.  False means nothing was mutated and the caller must
        take the per-iteration path (whose inner chunks may still batch)."""
        plan, lo_fn, hi_fn, step_fn, _ = entry
        machine = self.machine
        pe_obj = machine.pes[pe]
        n_outer = len(values)
        if n_outer == 0:
            return False
        outer_var = loop.var
        if self._chunk_guards(plan, env, pe_obj, skip=outer_var) is not None:
            return False
        overhead = float(self.params.loop_overhead)
        # Row bounds are array-free pure closures; evaluate them all first.
        # When every row shares the same bounds (the common rectangular
        # case) the whole (outer, inner) box binds in ONE bind2 call per
        # slot instead of one bind per (slot, row).
        bounds = []
        for j in values:
            env[outer_var] = j
            bounds.append((int(lo_fn(env, pe)), int(hi_fn(env, pe)),
                           int(step_fn(env, pe))))
        if all(b == bounds[0] for b in bounds):
            return self._exec_fused_uniform(plan, env, pe, pe_obj, values,
                                            outer_var, bounds[0], overhead)
        entry = ekey = None
        if self._memo_on(plan):
            ekey = (id(plan), pe, outer_var,
                    tuple(env[n] for n in plan.env_vars if n != outer_var),
                    tuple(values), tuple(bounds))
            entry = self._chunk_memo.get(ekey)
        if entry is not None:
            return self._fused_memo_run(plan, entry, env, pe, pe_obj,
                                        outer_var)
        flat_groups: List[List[np.ndarray]] = [[] for _ in plan.slots]
        v_rows: List[np.ndarray] = []
        o_rows: List[np.ndarray] = []
        row_marks: List[Tuple[int, float]] = []
        pending = 0.0  # outer overheads awaiting the next non-empty group
        total_iters = 0
        for j, (lo, hi, step) in zip(values, bounds):
            env[outer_var] = j
            vals_j = range(lo, hi + (1 if step > 0 else -1), step)
            pending += overhead
            tj = len(vals_j)
            if tj == 0:
                continue
            vj = np.arange(vals_j.start, vals_j.stop, vals_j.step,
                           dtype=np.int64)
            bound, _ = self._bind_slots(plan, env, vj)
            if bound is None:
                return False  # out of bounds: reference raises exactly
            for s_i, f in enumerate(bound):
                flat_groups[s_i].append(f)
            v_rows.append(vj)
            o_rows.append(np.full(tj, j, dtype=np.int64))
            row_marks.append((total_iters, pending))
            pending = 0.0
            total_iters += tj
        if total_iters == 0 or (not self._force_batch
                                and total_iters * plan.n_events
                                < MIN_BATCH_EVENTS):
            return False
        flats = [np.concatenate(g) for g in flat_groups]
        if ((pe_obj.queue.entries or pe_obj.dropped_lines)
                and not self._prefetch_disjoint(plan, pe_obj, flats)):
            return False  # per-iteration path: inner chunks replay exactly
        if self._stale_overlap(plan, pe_obj, flats):
            return self._fall("stale_overlap")
        if not self._vector_safe(plan, flats):
            return False  # per-group chunks may still vectorise alone
        V = np.concatenate(v_rows)
        O = np.concatenate(o_rows)
        extra_rows = np.zeros(total_iters, dtype=np.float64)
        for row, val in row_marks:
            extra_rows[row] += val
        const_total = (overhead * n_outer
                       + plan.const_per_iter * total_iters)
        sig = None
        if ekey is not None and len(self._chunk_memo) < MEMO_CAP:
            entry = _MemoEntry(flats, None, V, {outer_var: O}, total_iters,
                               const_total, (extra_rows, pending))
            entry.vec_safe = True
            self._memo_index(entry, plan)
            self._chunk_memo[ekey] = entry
            sig = self._memo_sig(entry, pe_obj)
        self.batch_chunks += 1
        vecs = {plan.var: V, outer_var: O}
        if self._plane_ops is not None:
            self._plane_ops.append(("b", pe, plan, flats))
        self._vector_value_pass(plan, env, pe, flats, vecs)
        env[plan.var] = int(V[-1])
        # env[outer_var] already holds values[-1] from the binding sweep.
        rec = {} if sig is not None else None
        self._timing_pass(plan, pe_obj, pe, total_iters, flats, const_total,
                          (extra_rows, pending), self._inflight(pe_obj), rec)
        if rec is not None:
            entry.variants[sig] = rec
        return True

    def _fused_memo_run(self, plan: _Plan, entry: _MemoEntry, env: dict,
                        pe: int, pe_obj, outer_var: str) -> bool:
        """Run a fused chunk whose bindings were memoised: the bounds
        sweep already matched the stored key, so the per-row bind work is
        skipped and only the state-dependent guards re-run live."""
        flats = entry.flats
        if ((pe_obj.queue.entries or pe_obj.dropped_lines)
                and not self._prefetch_disjoint(plan, pe_obj, flats)):
            return False  # per-iteration path: inner chunks replay exactly
        sig = self._memo_sig(entry, pe_obj)
        out = entry.variants.get(sig)
        if out is None and self._stale_overlap(plan, pe_obj, flats):
            return self._fall("stale_overlap")
        self.batch_chunks += 1
        V = entry.V
        vecs = {plan.var: V}
        vecs.update(entry.vecs_extra)
        if self._plane_ops is not None:
            self._plane_ops.append(("b", pe, plan, flats))
        self._vector_value_pass(plan, env, pe, flats, vecs)
        env[plan.var] = int(V[-1])
        if out is not None:
            self._memo_replay(pe_obj, pe, out)
        else:
            rec: dict = {}
            self._timing_pass(plan, pe_obj, pe, entry.Tt, flats,
                              entry.const_total, entry.row_extra,
                              self._inflight(pe_obj), rec)
            entry.variants[sig] = rec
        return True

    def _exec_fused_uniform(self, plan: _Plan, env: dict, pe: int, pe_obj,
                            values: Sequence[int], outer_var: str,
                            row_bounds: Tuple[int, int, int],
                            overhead: float) -> bool:
        """Fused chunk whose rows all share (lo, hi, step): bind the whole
        box with one :meth:`_Slot.bind2` call per slot."""
        lo, hi, step = row_bounds
        rng = range(lo, hi + (1 if step > 0 else -1), step)
        tj = len(rng)
        n_outer = len(values)
        total_iters = n_outer * tj
        if tj == 0 or (not self._force_batch
                       and total_iters * plan.n_events < MIN_BATCH_EVENTS):
            return False
        entry = ekey = None
        if self._memo_on(plan):
            ekey = (id(plan), pe, outer_var,
                    tuple(env[n] for n in plan.env_vars if n != outer_var),
                    tuple(values), row_bounds)
            entry = self._chunk_memo.get(ekey)
        if entry is not None:
            return self._fused_memo_run(plan, entry, env, pe, pe_obj,
                                        outer_var)
        vj = np.arange(rng.start, rng.stop, rng.step, dtype=np.int64)
        V = np.tile(vj, n_outer)
        O = np.repeat(np.fromiter(values, dtype=np.int64, count=n_outer), tj)
        vmin = int(vj.min())
        vmax = int(vj.max())
        omin = min(values)
        omax = max(values)
        flats: List[Optional[np.ndarray]] = [None] * plan.n_events
        for rep, members in plan.bind_groups:
            base = plan.slots[rep].bind2(env, V, O, outer_var,
                                         vmin, vmax, omin, omax)
            if base is None:
                return False  # out of bounds: reference raises exactly
            flats[rep] = base
            for j, dc, need_bounds in members:
                if need_bounds and not plan.slots[j].bounds2(
                        env, outer_var, vmin, vmax, omin, omax):
                    return False
                flats[j] = base if dc == 0 else base + dc
        if ((pe_obj.queue.entries or pe_obj.dropped_lines)
                and not self._prefetch_disjoint(plan, pe_obj, flats)):
            return False  # per-iteration path: inner chunks replay exactly
        if self._stale_overlap(plan, pe_obj, flats):
            return self._fall("stale_overlap")
        if not self._vector_safe(plan, flats):
            return False  # per-group chunks may still vectorise alone
        extra_rows = np.zeros(total_iters, dtype=np.float64)
        extra_rows[::tj] += overhead
        const_total = overhead * n_outer + plan.const_per_iter * total_iters
        sig = None
        if ekey is not None and len(self._chunk_memo) < MEMO_CAP:
            entry = _MemoEntry(flats, None, V, {outer_var: O}, total_iters,
                               const_total, (extra_rows, 0.0))
            entry.vec_safe = True
            self._memo_index(entry, plan)
            self._chunk_memo[ekey] = entry
            sig = self._memo_sig(entry, pe_obj)
        self.batch_chunks += 1
        vecs = {plan.var: V, outer_var: O}
        if self._plane_ops is not None:
            self._plane_ops.append(("b", pe, plan, flats))
        self._vector_value_pass(plan, env, pe, flats, vecs)
        env[plan.var] = int(V[-1])
        # env[outer_var] already holds values[-1] from the bounds sweep.
        rec = {} if sig is not None else None
        self._timing_pass(plan, pe_obj, pe, total_iters, flats, const_total,
                          (extra_rows, 0.0), self._inflight(pe_obj), rec)
        if rec is not None:
            entry.variants[sig] = rec
        return True

    # ------------------------------------------------------------------
    # plan compilation
    # ------------------------------------------------------------------
    def _compile_plan(self, loop: Loop, ctx, outer_ctxs, loop_vars,
                      final_clear: bool,
                      loop_overhead: bool = True) -> Optional[_Plan]:
        try:
            return self._compile_plan_inner(loop, ctx, outer_ctxs, loop_vars,
                                            final_clear, loop_overhead)
        except _Ineligible:
            return None

    def _compile_plan_inner(self, loop, ctx, outer_ctxs, loop_vars,
                            final_clear, loop_overhead=True) -> _Plan:
        params = self.params
        cfg = self.config
        for bound in (loop.lower, loop.upper, loop.step):
            if any(isinstance(n, ArrayRef) for n in bound.walk()):
                raise _Ineligible  # wrapper would double-charge bound reads
        if not _integral(params.cache_hit, params.local_mem,
                         params.remote_base, params.remote_per_hop,
                         params.uncached_local_read, params.write_local,
                         params.write_remote_base, params.write_remote_per_hop,
                         params.craft_shared_ref_overhead,
                         params.loop_overhead):
            raise _Ineligible  # fractional costs: bulk summation inexact
        slots: List[_Slot] = []
        value_fns: list = []
        const_before: List[float] = []  # const cycles preceding each event
        # Segmented-body plans exclude the per-iteration loop overhead:
        # their driver charges it at the exact reference point (iteration
        # start), before any sibling segment runs.
        accbox = [float(params.loop_overhead) if loop_overhead else 0.0]
        live: Set[tuple] = set()  # register keys live within one iteration
        key_slot: Dict[tuple, int] = {}  # promoted key -> event slot index
        node_slot: Dict[int, int] = {}   # id(ArrayRef) -> address slot index
        reg_ops: list = []  # ("set", key, slot) / ("drop", keys) in order
        vec_meta: list = []  # per-stmt ("arr", slot, rhs, pops) / ("sca", ...)
        assigned: List[str] = []
        for stmt in loop.body:
            if isinstance(stmt, PrefetchLine):
                self._plan_prefetch(stmt, loop.var, slots, const_before,
                                    accbox)
                continue
            if not isinstance(stmt, Assign):
                raise _Ineligible
            for node in stmt.rhs.walk():
                if isinstance(node, BinOp) and node.op in ("and", "or"):
                    raise _Ineligible  # short-circuit: event order is
                    # data-dependent
            # Reads, in evaluation order (pre-order over the rhs; affine
            # subscripts contain no nested ArrayRefs).
            for node in stmt.rhs.walk():
                if isinstance(node, ArrayRef):
                    self._plan_read(node, ctx, loop_vars, loop.var, live,
                                    slots, const_before, accbox, key_slot,
                                    node_slot, reg_ops)
            arith = self._arith_cost(stmt.rhs)
            if not _integral(arith):
                raise _Ineligible
            accbox[0] += arith
            rhs_fn = self._compile_value_expr(stmt.rhs, ctx, loop_vars)
            if isinstance(stmt.lhs, VarRef):
                if stmt.lhs.name not in assigned:
                    assigned.append(stmt.lhs.name)
                value_fns.append(self._value_scalar_assign(stmt.lhs.name,
                                                          rhs_fn))
                vec_meta.append(("sca", stmt.lhs.name, stmt.rhs))
                continue
            write_fn, pops_outer = self._plan_write(
                stmt.lhs, rhs_fn, ctx, outer_ctxs, loop.var, live, slots,
                const_before, accbox, reg_ops)
            value_fns.append(write_fn)
            vec_meta.append(("arr", len(slots) - 1, stmt.rhs, pops_outer))
        if not slots:
            raise _Ineligible  # pure scalar loop: nothing worth batching
        # A scalar assigned inside the body must not feed any subscript or
        # shadow the loop variable: slot addresses bind once per chunk from
        # the pre-chunk environment.
        if assigned:
            addr_vars = set()
            for slot in slots:
                addr_vars |= slot.variables()
            if (loop.var in assigned
                    or not addr_vars.isdisjoint(assigned)):
                raise _Ineligible
        const_per_iter = float(sum(const_before) + accbox[0])
        vec_stmts = self._compile_vec_stmts(vec_meta, node_slot, loop.var,
                                            assigned)
        plan = _Plan(loop.var, ctx.values, final_clear, value_fns, slots,
                     const_per_iter, const_before, accbox[0], tuple(assigned),
                     vec_stmts, reg_ops)
        plan.seq_fn = self._compile_seq_fn(plan, loop, ctx, outer_ctxs,
                                           loop_vars)
        return plan

    def _plan_prefetch(self, stmt: PrefetchLine, var: str, slots, const_before,
                       accbox) -> None:
        params = self.params
        if not _integral(params.prefetch_issue):
            raise _Ineligible
        decl = self.program.array(stmt.ref.array)
        if not self.config.cache_shared and decl.is_shared:
            # Disabled shared cache: the reference folds the prefetch into a
            # no-op costing bare issue time, in or out of bounds alike.
            accbox[0] += float(params.prefetch_issue)
            return
        if not _integral(params.dtb_setup, params.prefetch_extract):
            raise _Ineligible
        slot = self._slot_for(stmt.ref, "pf", var, False, False, True)
        slot.inval = bool(stmt.invalidate_first)
        slots.append(slot)
        const_before.append(accbox[0])
        accbox[0] = 0.0

    def _slot_for(self, ref: ArrayRef, role: str, var: str, bypass: bool,
                  craft: bool, cacheable: bool) -> _Slot:
        decl = self.program.array(ref.array)
        aref = affine_ref(ref, decl)
        if aref is None:
            raise _Ineligible
        owners = (self.machine.addr_map.owner_table(ref.array)
                  if decl.is_shared else None)
        extra = float(self.params.craft_shared_ref_overhead) if craft else 0.0
        return _Slot(role, ref.array, self.machine.addr_map.base(ref.array),
                     decl.is_shared, bypass, craft, cacheable, aref.address,
                     aref.dims, decl.shape, var, self.program.sym_value,
                     owners, extra)

    def _plan_read(self, ref: ArrayRef, ctx, loop_vars, var, live, slots,
                   const_before, accbox, key_slot, node_slot, reg_ops):
        decl = self.program.array(ref.array)
        shared = decl.is_shared
        bypass = shared and ref.mode == RefMode.BYPASS
        cacheable = (self.config.cache_shared if shared else True) and not bypass
        craft = self.config.craft_overheads and shared
        key = ref.key()
        promoted = (key in ctx.reads
                    and all(s.free_vars() <= loop_vars for s in ref.subscripts))
        if promoted and key in live:
            # Register hit: no machine event in any iteration, but the
            # vectorised value plane still needs this node's address vector
            # — identical key means identical subscripts, so reuse the slot
            # that created the register.
            node_slot[id(ref)] = key_slot[key]
            return
        slots.append(self._slot_for(ref, "cr" if cacheable else "ur", var,
                                    bypass, craft, cacheable))
        node_slot[id(ref)] = len(slots) - 1
        const_before.append(accbox[0])
        accbox[0] = 0.0
        if promoted:
            live.add(key)
            key_slot[key] = len(slots) - 1
            reg_ops.append(("set", key, len(slots) - 1))

    def _plan_write(self, lhs: ArrayRef, rhs_fn, ctx, outer_ctxs, var, live,
                    slots, const_before, accbox, reg_ops):
        decl = self.program.array(lhs.array)
        shared = decl.is_shared
        cacheable = self.config.cache_shared if shared else True
        craft = self.config.craft_overheads and shared
        slots.append(self._slot_for(lhs, "w", var, False, craft, cacheable))
        const_before.append(accbox[0])
        accbox[0] = 0.0
        write_aref = affine_ref(lhs, decl)
        # Register evictions, exactly as the reference assign closure does:
        # pop may-alias keys in every active context.
        pops = []
        pops_outer = []
        for c in list(outer_ctxs) + [ctx]:
            keys = c.drop_keys_for_write(lhs, write_aref)
            if keys:
                pops.append((c.values, keys))
                if c is not ctx:
                    pops_outer.append((c.values, keys))
        own_drops = ctx.drop_keys_for_write(lhs, write_aref)
        live.difference_update(own_drops)
        if own_drops:
            reg_ops.append(("drop", tuple(own_drops)))
        flat_fn = self._compile_flat_index(lhs)
        memory = self.machine.memory
        if shared:
            vals = memory.values[lhs.array]
            vers = memory.versions[lhs.array]

            def write_shared(env: dict, pe: int) -> None:
                value = rhs_fn(env, pe)
                flat = flat_fn(env, pe)
                vals[flat] = value
                vers[flat] += 1
                for registers, keys in pops:
                    for key in keys:
                        registers.pop(key, None)

            return write_shared, pops_outer
        pvals = memory.private_values[lhs.array]

        def write_private(env: dict, pe: int) -> None:
            value = rhs_fn(env, pe)
            flat = flat_fn(env, pe)
            pvals[pe, flat] = value
            for registers, keys in pops:
                for key in keys:
                    registers.pop(key, None)

        return write_private, pops_outer

    @staticmethod
    def _value_scalar_assign(name: str, rhs_fn):
        def assign_scalar(env: dict, pe: int) -> None:
            env[name] = rhs_fn(env, pe)

        return assign_scalar

    # ------------------------------------------------------------------
    # value-plane expression compilation
    # ------------------------------------------------------------------
    # These mirror Interpreter._build_expr exactly, minus machine calls:
    # the same Python operator expressions over the same Python floats, so
    # a committed chunk computes bit-identical values to the reference.
    _BIN_FNS = {
        "+": lambda l, r: lambda env, pe: l(env, pe) + r(env, pe),
        "-": lambda l, r: lambda env, pe: l(env, pe) - r(env, pe),
        "*": lambda l, r: lambda env, pe: l(env, pe) * r(env, pe),
        "**": lambda l, r: lambda env, pe: l(env, pe) ** r(env, pe),
        "mod": lambda l, r: lambda env, pe: math.fmod(l(env, pe), r(env, pe)),
        "min": lambda l, r: lambda env, pe: min(l(env, pe), r(env, pe)),
        "max": lambda l, r: lambda env, pe: max(l(env, pe), r(env, pe)),
        "<": lambda l, r: lambda env, pe: l(env, pe) < r(env, pe),
        "<=": lambda l, r: lambda env, pe: l(env, pe) <= r(env, pe),
        ">": lambda l, r: lambda env, pe: l(env, pe) > r(env, pe),
        ">=": lambda l, r: lambda env, pe: l(env, pe) >= r(env, pe),
        "==": lambda l, r: lambda env, pe: l(env, pe) == r(env, pe),
        "!=": lambda l, r: lambda env, pe: l(env, pe) != r(env, pe),
    }
    _INTR_FNS = {
        "sqrt": lambda fns: lambda env, pe: math.sqrt(fns[0](env, pe)),
        "abs": lambda fns: lambda env, pe: abs(fns[0](env, pe)),
        "exp": lambda fns: lambda env, pe: math.exp(fns[0](env, pe)),
        "log": lambda fns: lambda env, pe: math.log(fns[0](env, pe)),
        "sin": lambda fns: lambda env, pe: math.sin(fns[0](env, pe)),
        "cos": lambda fns: lambda env, pe: math.cos(fns[0](env, pe)),
        "int": lambda fns: lambda env, pe: int(fns[0](env, pe)),
        "real": lambda fns: lambda env, pe: float(fns[0](env, pe)),
        "min": lambda fns: lambda env, pe: min(fns[0](env, pe), fns[1](env, pe)),
        "max": lambda fns: lambda env, pe: max(fns[0](env, pe), fns[1](env, pe)),
        "mod": lambda fns: lambda env, pe: math.fmod(fns[0](env, pe),
                                                     fns[1](env, pe)),
        "sign": lambda fns: lambda env, pe: math.copysign(
            abs(fns[0](env, pe)), fns[1](env, pe)),
    }

    def _compile_value_expr(self, expr: Expr, ctx, loop_vars) -> Callable:
        if isinstance(expr, IntConst):
            ivalue = expr.value
            return lambda env, pe: ivalue
        if isinstance(expr, FloatConst):
            fvalue = expr.value
            return lambda env, pe: fvalue
        if isinstance(expr, SymConst):
            bound = self.program.sym_value(expr.name)
            return lambda env, pe: bound
        if isinstance(expr, VarRef):
            name = expr.name
            return lambda env, pe: env[name]
        if isinstance(expr, ArrayRef):
            return self._value_array_read(expr, ctx, loop_vars)
        if isinstance(expr, UnaryOp):
            inner = self._compile_value_expr(expr.operand, ctx, loop_vars)
            if expr.op == "-":
                return lambda env, pe: -inner(env, pe)
            if expr.op == "not":
                return lambda env, pe: not inner(env, pe)
            return inner
        if isinstance(expr, IntrinsicCall):
            fns = [self._compile_value_expr(a, ctx, loop_vars)
                   for a in expr.args]
            return self._INTR_FNS[expr.name](fns)
        if isinstance(expr, BinOp):
            left = self._compile_value_expr(expr.left, ctx, loop_vars)
            right = self._compile_value_expr(expr.right, ctx, loop_vars)
            if expr.op == "/":
                def divide(env, pe):
                    a = left(env, pe)
                    b = right(env, pe)
                    if isinstance(a, int) and isinstance(b, int):
                        return int(a / b)  # Fortran integer division truncates
                    return a / b

                return divide
            builder = self._BIN_FNS.get(expr.op)
            if builder is None:
                raise _Ineligible  # and/or reach here only via nesting
            return builder(left, right)
        raise _Ineligible

    def _value_array_read(self, ref: ArrayRef, ctx, loop_vars) -> Callable:
        decl = self.program.array(ref.array)
        flat_fn = self._compile_flat_index(ref)
        memory = self.machine.memory
        if decl.is_shared:
            vals = memory.values[ref.array]

            def raw(env: dict, pe: int) -> float:
                return float(vals[flat_fn(env, pe)])
        else:
            pvals = memory.private_values[ref.array]

            def raw(env: dict, pe: int) -> float:
                return float(pvals[pe, flat_fn(env, pe)])

        key = ref.key()
        if (key in ctx.reads
                and all(s.free_vars() <= loop_vars for s in ref.subscripts)):
            registers = ctx.values

            def read_promoted(env: dict, pe: int) -> float:
                value = registers.get(key)
                if value is None:
                    value = raw(env, pe)
                    registers[key] = value
                return value

            return read_promoted
        return raw

    # ------------------------------------------------------------------
    # compiled scalar value pass
    # ------------------------------------------------------------------
    # When the vector pass is refused (true loop-carried recurrences, e.g.
    # VPENTA's forward elimination), the chunk's values were computed by
    # chaining per-event closures — correct but closure-dispatch-bound.
    # Generate instead ONE Python function per plan containing the whole
    # ``for v in values:`` loop with everything statically resolved:
    # register promotion becomes plain locals (the per-iteration
    # ``registers.clear()`` plus compile-time ``drop_keys_for_write`` sets
    # make the dict dynamics fully static), flat indices are inlined
    # arithmetic with no bounds checks (``_bind_slots`` already validated
    # the whole chunk), and env scalars live in locals written back once.
    # Bit-exactness: identical float operations in identical order —
    # ``float()`` materialisation on loads, the reference's int/int
    # division rule, ``math.fmod``/``copysign`` intrinsics — only the
    # dispatch around them changes.
    _SEQ_INTR = {
        "sqrt": "_sqrt({0})", "abs": "abs({0})", "exp": "_exp({0})",
        "log": "_log({0})", "sin": "_sin({0})", "cos": "_cos({0})",
        "int": "int({0})", "real": "float({0})",
        "min": "min({0}, {1})", "max": "max({0}, {1})",
        "mod": "_fmod({0}, {1})", "sign": "_copysign(abs({0}), {1})",
    }
    _SEQ_INTR_ARITY = {"min": 2, "max": 2, "mod": 2, "sign": 2}
    _SEQ_BIN = frozenset(("+", "-", "*", "**", "<", "<=", ">", ">=",
                          "==", "!="))

    def _compile_seq_fn(self, plan, loop, ctx, outer_ctxs,
                        loop_vars) -> Optional[Callable]:
        try:
            return self._compile_seq_fn_inner(plan, loop, ctx, outer_ctxs,
                                              loop_vars)
        except _SeqIneligible:
            return None

    def _compile_seq_fn_inner(self, plan, loop, ctx, outer_ctxs, loop_vars):
        var = loop.var

        def ok_name(n: str) -> bool:
            # Program identifiers become Python locals verbatim; reserved
            # generated names all start with "_" so they can never clash.
            return (n.isidentifier() and not keyword.iskeyword(n)
                    and not n.startswith("_"))

        if not ok_name(var):
            raise _SeqIneligible
        int_names = set(plan.env_vars) | {var}  # guard-checked ints
        program = self.program
        memory = self.machine.memory
        ns: dict = {"_div": _seq_div, "_fmod": math.fmod,
                    "_sqrt": math.sqrt, "_exp": math.exp, "_log": math.log,
                    "_sin": math.sin, "_cos": math.cos,
                    "_copysign": math.copysign}
        arr_syms: Dict[Tuple[str, str], str] = {}
        head: List[str] = []   # once-per-call setup (env loads, array rows)
        body: List[str] = []   # per-iteration statements
        loaded: Set[str] = set()
        assigned_now: Set[str] = set()
        reg: Dict[tuple, str] = {}  # promoted register key -> local temp
        counters = {"t": 0, "d": 0}
        outer_pop_lines: List[str] = []
        outer_seen: Set[tuple] = set()

        def sym(kind: str, aname: str) -> str:
            k = (kind, aname)
            s = arr_syms.get(k)
            if s is None:
                s = f"_{kind}{len(arr_syms)}"
                arr_syms[k] = s
                if kind == "v":
                    ns[s] = memory.values[aname]
                elif kind == "w":
                    ns[s] = memory.versions[aname]
                else:  # this PE's private row, hoisted per call
                    ns["_P" + s] = memory.private_values[aname]
                    head.append(f"{s} = _P{s}[_pe]")
            return s

        def temp() -> str:
            counters["t"] += 1
            return f"_t{counters['t']}"

        def scalar(name: str) -> str:
            if not ok_name(name):
                raise _SeqIneligible
            if name != var and name not in assigned_now \
                    and name not in loaded:
                loaded.add(name)
                head.append(f"{name} = _env[{name!r}]")
            return name

        def provably_int(e) -> bool:
            if isinstance(e, IntConst):
                return True
            if isinstance(e, VarRef):
                return e.name in int_names
            if isinstance(e, SymConst):
                return type(program.sym_value(e.name)) is int
            if isinstance(e, UnaryOp) and e.op == "-":
                return provably_int(e.operand)
            if isinstance(e, BinOp) and e.op in ("+", "-", "*", "/"):
                return provably_int(e.left) and provably_int(e.right)
            return False

        def flat_src(ref: ArrayRef, pre: List[str]) -> str:
            decl = program.array(ref.array)
            if not ref.subscripts:
                raise _SeqIneligible
            terms = []
            for s, stride in zip(ref.subscripts, decl.strides()):
                src = emit(s, pre)
                if not provably_int(s):
                    src = f"int({src})"  # the reference truncates here too
                term = f"({src} - 1)"
                if stride != 1:
                    term = f"{term} * {stride}"
                terms.append(term)
            return " + ".join(terms)

        def read_src(ref: ArrayRef, pre: List[str]) -> str:
            decl = program.array(ref.array)
            key = ref.key()
            promoted = (key in ctx.reads
                        and all(s.free_vars() <= loop_vars
                                for s in ref.subscripts))
            if promoted and key in reg:
                return reg[key]
            fs = flat_src(ref, pre)
            kind = "v" if decl.is_shared else "p"
            load = f"float({sym(kind, ref.array)}[{fs}])"
            if promoted:
                r = temp()
                pre.append(f"{r} = {load}")
                reg[key] = r
                return r
            return load

        def emit(e: Expr, pre: List[str]) -> str:
            if isinstance(e, IntConst):
                return f"({e.value!r})"
            if isinstance(e, FloatConst):
                return f"({e.value!r})"  # repr round-trips floats exactly
            if isinstance(e, SymConst):
                v = program.sym_value(e.name)
                if type(v) in (int, float):
                    return f"({v!r})"
                raise _SeqIneligible
            if isinstance(e, VarRef):
                return scalar(e.name)
            if isinstance(e, ArrayRef):
                return read_src(e, pre)
            if isinstance(e, UnaryOp):
                inner = emit(e.operand, pre)
                if e.op == "-":
                    return f"(-{inner})"
                if e.op == "not":
                    return f"(not {inner})"
                return inner
            if isinstance(e, IntrinsicCall):
                tmpl = self._SEQ_INTR.get(e.name)
                if tmpl is None \
                        or len(e.args) != self._SEQ_INTR_ARITY.get(e.name, 1):
                    raise _SeqIneligible
                return tmpl.format(*(emit(a, pre) for a in e.args))
            if isinstance(e, BinOp):
                left = emit(e.left, pre)
                right = emit(e.right, pre)
                if e.op == "/":
                    return f"_div({left}, {right})"
                if e.op == "mod":
                    return f"_fmod({left}, {right})"
                if e.op in ("min", "max"):
                    return f"{e.op}({left}, {right})"
                if e.op in self._SEQ_BIN:
                    return f"({left} {e.op} {right})"
                raise _SeqIneligible
            raise _SeqIneligible

        for stmt in loop.body:
            if isinstance(stmt, PrefetchLine):
                continue  # timing-only: no value-plane effect
            pre: List[str] = []
            rhs = emit(stmt.rhs, pre)
            if isinstance(stmt.lhs, VarRef):
                name = stmt.lhs.name
                if not ok_name(name):
                    raise _SeqIneligible
                body.extend(pre)
                body.append(f"{name} = {rhs}")
                assigned_now.add(name)
                continue
            lhs = stmt.lhs
            decl = program.array(lhs.array)
            # Value before address, as the write closures evaluate them.
            body.extend(pre)
            tv = temp()
            body.append(f"{tv} = {rhs}")
            fpre: List[str] = []
            fs = flat_src(lhs, fpre)
            body.extend(fpre)
            tf = temp()
            body.append(f"{tf} = {fs}")
            if decl.is_shared:
                body.append(f"{sym('v', lhs.array)}[{tf}] = {tv}")
                body.append(f"{sym('w', lhs.array)}[{tf}] += 1")
            else:
                body.append(f"{sym('p', lhs.array)}[{tf}] = {tv}")
            write_aref = affine_ref(lhs, decl)
            for k in ctx.drop_keys_for_write(lhs, write_aref):
                reg.pop(k, None)  # symbolic: next read re-loads
            for c in outer_ctxs:
                keys = c.drop_keys_for_write(lhs, write_aref)
                if keys:
                    # The same keys are evicted every iteration; popping
                    # once after the loop is exact (nothing reads outer
                    # registers mid-chunk).
                    dkey = (id(c.values), tuple(keys))
                    if dkey in outer_seen:
                        continue
                    outer_seen.add(dkey)
                    dn = f"_d{counters['d']}"
                    counters["d"] += 1
                    ns[dn] = c.values
                    for ki, key in enumerate(keys):
                        kn = f"{dn}k{ki}"
                        ns[kn] = key
                        outer_pop_lines.append(f"{dn}.pop({kn}, None)")
        if not body:
            raise _SeqIneligible
        src = ["def _chunk(_values, _env, _pe):"]
        src.extend("    " + h for h in head)
        src.append(f"    for {var} in _values:")
        src.extend("        " + b for b in body)
        src.append(f"    _env[{var!r}] = {var}")
        src.extend(f"    _env[{name!r}] = {name}" for name in plan.assigned)
        src.extend("    " + p for p in outer_pop_lines)
        exec(compile("\n".join(src), "<batched-seq-fn>", "exec"), ns)
        return ns["_chunk"]

    def _register_residue(self, plan: _Plan, pe: int,
                          flats: List[np.ndarray]) -> None:
        """Leave ``plan.registers`` exactly as the sequential closure pass
        would have: cleared, then — unless the plan ends with a clear —
        the last iteration's surviving promotions rebuilt.  A surviving
        key was never aliased by a chunk write after its load
        (``drop_keys_for_write`` is conservative), so re-gathering from
        final memory reproduces the value the reference cached at read
        time."""
        registers = plan.registers
        registers.clear()
        if plan.final_clear:
            return
        memory = self.machine.memory
        for rop in plan.reg_ops:
            if rop[0] == "set":
                _, key, k = rop
                slot = plan.slots[k]
                last = flats[k][-1]
                if slot.shared:
                    registers[key] = float(memory.values[slot.array][last])
                else:
                    registers[key] = float(
                        memory.private_values[slot.array][pe, last])
            else:
                for key in rop[1]:
                    registers.pop(key, None)

    # ------------------------------------------------------------------
    # vectorised value-plane compilation
    # ------------------------------------------------------------------
    # A second compilation of the loop body, into whole-chunk NumPy
    # statements: gather every rhs operand as a vector, evaluate the rhs
    # elementwise, scatter to the lhs.  Only operations whose NumPy
    # float64 result is bit-identical to the reference's per-element
    # Python arithmetic are allowed (+ - * /, fmod, sqrt, abs, copysign,
    # and where()-based min/max); anything with a rounding or dynamic-type
    # hazard (exp/log/sin/cos SIMD paths, int**int, comparisons, scalars
    # of unknown runtime type in a division) rejects the vector pass and
    # the chunk runs the sequential value pass instead.
    def _compile_vec_stmts(self, vec_meta, node_slot, loop_var, assigned):
        try:
            defined: Set[str] = set()
            out = []
            for op in vec_meta:
                if op[0] == "arr":
                    _, slot_idx, rhs, pops_outer = op
                    fn, _, _ = self._vec_value(rhs, node_slot, loop_var,
                                               set(assigned), defined)
                    out.append(("arr", slot_idx, fn, tuple(pops_outer)))
                else:
                    _, name, rhs = op
                    fn, numclass, _ = self._vec_value(rhs, node_slot,
                                                      loop_var,
                                                      set(assigned), defined)
                    if numclass != "f":
                        raise _VecIneligible  # scalar must stay float-typed
                    defined.add(name)
                    out.append(("sca", name, fn))
            return out
        except _VecIneligible:
            return None

    def _vec_value(self, expr: Expr, node_slot, loop_var, assigned_set,
                   defined):
        """Compile ``expr`` to ``fn(env, pe, flats, vecs) -> vector|scalar``.

        Returns ``(fn, numclass, is_vector)`` with numclass 'i' (integer),
        'f' (float) or 'u' (unknown scalar type at runtime)."""
        if isinstance(expr, IntConst):
            iv = expr.value
            return (lambda env, pe, flats, vecs: iv), "i", False
        if isinstance(expr, FloatConst):
            fv = expr.value
            return (lambda env, pe, flats, vecs: fv), "f", False
        if isinstance(expr, SymConst):
            bound = self.program.sym_value(expr.name)
            cls = "i" if isinstance(bound, int) else "f"
            return (lambda env, pe, flats, vecs: bound), cls, False
        if isinstance(expr, VarRef):
            name = expr.name
            if name in assigned_set and name not in defined and \
                    name != loop_var:
                raise _VecIneligible  # loop-carried scalar dependence

            def var_read(env, pe, flats, vecs):
                v = vecs.get(name)
                return v if v is not None else env[name]

            if name == loop_var:
                return var_read, "i", True
            if name in defined:
                return var_read, "f", True
            return var_read, "u", False
        if isinstance(expr, ArrayRef):
            k = node_slot[id(expr)]
            decl = self.program.array(expr.array)
            memory = self.machine.memory
            if decl.is_shared:
                vals = memory.values[expr.array]

                def gather(env, pe, flats, vecs):
                    return vals[flats[k]]
            else:
                pvals = memory.private_values[expr.array]

                def gather(env, pe, flats, vecs):
                    return pvals[pe, flats[k]]

            return gather, "f", True
        if isinstance(expr, UnaryOp):
            fn, cls, vec = self._vec_value(expr.operand, node_slot, loop_var,
                                           assigned_set, defined)
            if expr.op == "-":
                return (lambda env, pe, flats, vecs:
                        -fn(env, pe, flats, vecs)), cls, vec
            if expr.op == "not":
                raise _VecIneligible
            return fn, cls, vec
        if isinstance(expr, IntrinsicCall):
            fns = []
            clss = []
            vecs_ = []
            for a in expr.args:
                f, c, v = self._vec_value(a, node_slot, loop_var,
                                          assigned_set, defined)
                fns.append(f)
                clss.append(c)
                vecs_.append(v)
            anyvec = any(vecs_)
            name = expr.name
            if name == "sqrt":  # np.sqrt is correctly rounded, like math's
                f0 = fns[0]
                return (lambda env, pe, flats, vecs:
                        np.sqrt(f0(env, pe, flats, vecs))), "f", anyvec
            if name == "abs":
                f0 = fns[0]
                return (lambda env, pe, flats, vecs:
                        np.abs(f0(env, pe, flats, vecs))), clss[0], anyvec
            if name == "real":
                f0 = fns[0]
                return (lambda env, pe, flats, vecs:
                        _to_float(f0(env, pe, flats, vecs))), "f", anyvec
            if name == "int":
                f0 = fns[0]
                return (lambda env, pe, flats, vecs:
                        np.trunc(f0(env, pe, flats, vecs))), "i", anyvec
            if name == "sign":
                f0, f1 = fns
                return (lambda env, pe, flats, vecs:
                        np.copysign(np.abs(f0(env, pe, flats, vecs)),
                                    f1(env, pe, flats, vecs))), "f", anyvec
            if name == "mod":
                f0, f1 = fns
                return (lambda env, pe, flats, vecs:
                        np.fmod(f0(env, pe, flats, vecs),
                                f1(env, pe, flats, vecs))), "f", anyvec
            if name in ("min", "max"):
                return self._vec_minmax(name, fns[0], fns[1], clss, anyvec)
            raise _VecIneligible  # exp/log/sin/cos: SIMD ulp risk
        if isinstance(expr, BinOp):
            lf, lc, lv = self._vec_value(expr.left, node_slot, loop_var,
                                         assigned_set, defined)
            rf, rc, rv = self._vec_value(expr.right, node_slot, loop_var,
                                         assigned_set, defined)
            anyvec = lv or rv
            op = expr.op
            if op in ("+", "-", "*"):
                if "f" in (lc, rc):
                    cls = "f"
                elif lc == rc == "i":
                    cls = "i"
                else:
                    cls = "u"
                if op == "+":
                    return (lambda env, pe, flats, vecs:
                            lf(env, pe, flats, vecs)
                            + rf(env, pe, flats, vecs)), cls, anyvec
                if op == "-":
                    return (lambda env, pe, flats, vecs:
                            lf(env, pe, flats, vecs)
                            - rf(env, pe, flats, vecs)), cls, anyvec
                return (lambda env, pe, flats, vecs:
                        lf(env, pe, flats, vecs)
                        * rf(env, pe, flats, vecs)), cls, anyvec
            if op == "/":
                if "f" in (lc, rc):
                    return (lambda env, pe, flats, vecs:
                            lf(env, pe, flats, vecs)
                            / rf(env, pe, flats, vecs)), "f", anyvec
                if lc == rc == "i":
                    if not anyvec:
                        return (lambda env, pe, flats, vecs:
                                int(lf(env, pe, flats, vecs)
                                    / rf(env, pe, flats, vecs))), "i", False
                    # Fortran integer division: float-divide then truncate,
                    # exactly what int(a / b) does per element.
                    return (lambda env, pe, flats, vecs:
                            np.trunc(lf(env, pe, flats, vecs)
                                     / rf(env, pe, flats, vecs))), "i", True
                raise _VecIneligible  # unknown-typed operand: semantics
                # depend on the runtime type
            if op == "mod":
                return (lambda env, pe, flats, vecs:
                        np.fmod(lf(env, pe, flats, vecs),
                                rf(env, pe, flats, vecs))), "f", anyvec
            if op in ("min", "max"):
                return self._vec_minmax(op, lf, rf, (lc, rc), anyvec)
            raise _VecIneligible  # ** (int overflow semantics), comparisons
        raise _VecIneligible

    @staticmethod
    def _vec_minmax(op, lf, rf, clss, anyvec):
        # Python min(a, b) returns b only when b < a; np.where replicates
        # that tie/NaN behaviour exactly (np.minimum would not).
        cls = "f" if clss[0] == clss[1] == "f" else "u"
        if op == "min":
            def vmin(env, pe, flats, vecs):
                a = lf(env, pe, flats, vecs)
                b = rf(env, pe, flats, vecs)
                return np.where(b < a, b, a)

            return vmin, cls, anyvec

        def vmax(env, pe, flats, vecs):
            a = lf(env, pe, flats, vecs)
            b = rf(env, pe, flats, vecs)
            return np.where(b > a, b, a)

        return vmax, cls, anyvec

    # ------------------------------------------------------------------
    # cross-PE plane epochs
    # ------------------------------------------------------------------
    # A statically scheduled DOALL epoch is planned once and replayed for
    # all PEs.  The first time an epoch key (loop, bounds, scalar env,
    # n_pes) runs, it executes live through the inherited per-PE path
    # while a recorder (a) logs every chunk's (plan, address vectors) —
    # batch-committed ("b") and reference-served ("r") alike — and
    # (b) diffs a deep per-PE machine snapshot plus the shared-memory
    # word versions afterwards.  When the key recurs on a machine state
    # whose signature matches, the whole epoch commits as stacked
    # (n_pes, ...) scatters: shared memory words, cache tag/row planes,
    # then a small per-PE loop for clocks, stats, and prefetch hardware.
    # No per-PE chunk servicing, no value recomputation.
    #
    # Exactness rests on three facts.  (1) The signature pins every input
    # the epoch reads: clocks, float cycle counters, full tag arrays,
    # resident-line versions, prefetch-queue / vector / dropped-line
    # state, and the memory versions of every word any logged op touches.
    # (2) Version equality implies value equality — versions increase
    # monotonically from a deterministic start, so two states agreeing on
    # a word's version agree on its value — hence the recorded memory and
    # cache-row bytes reproduce the live run bit-for-bit, including reads
    # served stale out of a resident line (its versions are pinned by the
    # resident-vers signature part).  (3) Every reference-served ref must
    # be covered by a logged "r" op whose plan binds its exact address
    # stream: the refs-delta check vetoes the key otherwise, so nothing
    # unpinned can ever be skipped.

    def _plane_enabled(self, loop: Loop) -> bool:
        if not self._plane_on or self._plane_ops is not None:
            return False
        machine = self.machine
        if (machine.race_check or machine.trace_enabled
                or machine.faults is not None or machine.oracle is not None
                or machine.protocol is not None):
            return False
        if loop.schedule == ScheduleKind.DYNAMIC:
            return False
        tr = machine.tracer
        return tr is None or tr.counts_only(_PLANE_KINDS)

    def _plane_key(self, loop: Loop, env: dict, lo: int, hi: int,
                   step: int) -> Optional[tuple]:
        items = []
        for name in sorted(env):
            v = env[name]
            t = type(v)
            if t is not int and t is not float:
                return None
            # The int/float distinction matters (compiled closures
            # type-dispatch Fortran integer division) but hash(1) ==
            # hash(1.0), so tag the type into the key.
            items.append((name, v, t is int))
        return (loop.uid, lo, hi, step, self.params.n_pes, tuple(items))

    def _plane_sig(self, words_idx: np.ndarray) -> tuple:
        machine = self.machine
        return (tuple(pe.plane_sig() for pe in machine.pes),
                machine.memory.versions_flat[words_idx].tobytes(),
                len(machine.stats.stale_examples),
                0 if machine.tracer is None else 1)

    def _plane_line_owner(self, line: int) -> Tuple[Optional[str], bool]:
        """(array, is_shared) owning cache line ``line``.  Arrays are
        line-aligned in the global word space, so lines never straddle."""
        tab = self._plane_line_tab
        if tab is None:
            memory = self.machine.memory
            lw = self.params.line_words
            rows = sorted(
                (base // lw,
                 (base + memory.decls[name].size + lw - 1) // lw,
                 name, bool(memory.decls[name].is_shared))
                for name, base in memory.bases.items())
            self._plane_line_tab = tab = ([r[0] for r in rows], rows)
        los, rows = tab
        ix = bisect_right(los, line) - 1
        if ix >= 0:
            _, hi_line, name, shared = rows[ix]
            if line < hi_line:
                return name, shared
        return None, False

    def _run_doall_body(self, loop: Loop, env: dict, lo: int, hi: int,
                        step: int, run_iteration, run_preamble) -> None:
        pos = self._plane_pos
        self._plane_pos = pos + 1
        enabled = self._plane_enabled(loop)
        key = self._plane_key(loop, env, lo, hi, step) if enabled else None
        if self._plane_follow:
            # Chain mode: this run started from the canonical reset
            # state and every epoch so far matched the recorded chain,
            # so the machine state here is bit-identical to the state
            # the chained entry was verified against — replay without
            # recomputing the signature.
            trace = self._plane_trace
            if pos < len(trace) and trace[pos][0] == key:
                entry = trace[pos][1]
                if entry is not None:
                    self._plane_replay(entry, chain=True)
                    return
            else:
                self._plane_follow = False
                self._plane_trace = None
                self._plane_traces.pop(self._plane_run_tmode, None)
        build = self._plane_build
        if key is not None:
            if key in self._plane_veto:
                # The recording run that vetoed this key executed with
                # forced batching; keep every later occurrence on the
                # same path so bookkeeping (chunk counts, coverage,
                # fallback reasons) is run-order independent.
                if build is not None:
                    build.append((key, None))
                self._force_batch = True
                try:
                    super()._run_doall_body(loop, env, lo, hi, step,
                                            run_iteration, run_preamble)
                finally:
                    self._force_batch = False
                return
            memo = self._plane_memo.get(key)
            if memo is not None:
                words_idx, variants = memo
                entry = variants.get(self._plane_sig(words_idx))
                if entry is not None:
                    if build is not None:
                        build.append((key, entry))
                    self._plane_replay(entry)
                    return
            entry = self._plane_record(key, loop, env, lo, hi, step,
                                       run_iteration, run_preamble)
            if build is not None:
                build.append((key, entry))
            return
        if build is not None:
            build.append((None, None))
        super()._run_doall_body(loop, env, lo, hi, step,
                                run_iteration, run_preamble)

    def _plane_log_ref(self, plan: _Plan, env: dict, pe: int,
                       values) -> bool:
        """Log a reference-served chunk during a plane recording: the
        plan's bound address vectors pin the words the reference
        iterations are about to touch, and the returned admission keeps
        the refs-delta check exact.  False (and an unconditional veto)
        when the addresses cannot be bound."""
        if isinstance(values, range):
            V = np.arange(values.start, values.stop, values.step,
                          dtype=np.int64)
        else:
            V = np.asarray(values, dtype=np.int64)
        if V.size == 0:
            return True
        flats, _ = self._bind_slots(plan, env, V)
        if flats is None:
            self._plane_iter_veto = True
            return False
        self._plane_ops.append(("r", pe, plan, flats))
        self._plane_ref_refs += sum(
            len(flats[i]) for i, slot in enumerate(plan.slots)
            if slot.role != "pf")
        return True

    def _plane_record(self, key, loop: Loop, env: dict, lo: int, hi: int,
                      step: int, run_iteration, run_preamble):
        """Run one epoch live through the per-PE path while capturing
        everything a later replay needs; admit (and return) the recorded
        entry unless a veto shows the epoch is not plane-expressible."""
        machine = self.machine
        pes = machine.pes
        memory = machine.memory
        mst = machine.stats
        tr = machine.tracer
        pre = [pe.plane_snapshot() for pe in pes]
        pre_hw = [pe.queue.high_water for pe in pes]
        for pe in pes:
            # With the window reset to the current depth, the post value
            # is the epoch's true max depth M; the caller-visible value
            # is repaired to max(pre, M) below, veto or not.
            pe.queue.reset_high_water()
        pre_versions = memory.versions_flat.copy()
        pre_stale = mst.stale_reads
        pre_nex = len(mst.stale_examples)
        pre_counts = dict(tr.counts) if tr is not None else None
        pre_refs = sum(pe.stats.reads + pe.stats.writes for pe in pes)
        pre_batch_refs = self.batch_refs
        pre_chunks = self.batch_chunks
        pre_falls = self.batch_fallbacks
        pre_reasons = dict(self.fallback_reasons)

        ops: list = []
        self._plane_iter_veto = False
        self._plane_iter_allow = 0
        self._plane_ref_refs = 0

        def rec_iteration(env_p: dict, pe: int, value: int) -> None:
            # A reference-path iteration is fine when a logged "r" op has
            # pre-admitted it (its plan pinned the exact address stream);
            # otherwise the epoch mixes effects the op log cannot express
            # (per-event machine calls outside any plan) and the key is
            # vetoed.
            if self._plane_iter_allow > 0:
                self._plane_iter_allow -= 1
            else:
                self._plane_iter_veto = True
            run_iteration(env_p, pe, value)

        self._plane_ops = ops
        self._force_batch = True
        try:
            super()._run_doall_body(loop, env, lo, hi, step,
                                    rec_iteration, run_preamble)
        finally:
            self._plane_ops = None
            self._force_batch = False
            q_max = [pe.queue.high_water for pe in pes]
            for pe, hw0 in zip(pes, pre_hw):
                if hw0 > pe.queue.high_water:
                    pe.queue.high_water = hw0

        refs = sum(pe.stats.reads + pe.stats.writes for pe in pes) - pre_refs
        if (self._plane_iter_veto
                or refs != (self.batch_refs - pre_batch_refs
                            + self._plane_ref_refs)):
            self._plane_veto.add(key)
            return None
        diff = self._plane_diff(pre, q_max)
        if diff is None:
            self._plane_veto.add(key)
            return None
        (per_pe, chain, clock_scatter, shared_lines, tag_scatter,
         row_scatter) = diff
        if not self._plane_crosscheck(loop, ops, pre, tag_scatter):
            self._plane_veto.add(key)
            return None

        # Shared-memory diff: every word whose version moved this epoch,
        # committed at replay as two flat scatters.  Sound because every
        # shared write bumps its word's version (plain stores and
        # np.add.at scatters alike), so version inequality catches every
        # value change.
        chg = np.flatnonzero(memory.versions_flat != pre_versions)
        mem_vals = memory.values_flat[chg].copy()
        mem_vers = memory.versions_flat[chg].copy()

        # Words whose versions the signature must pin: every word any
        # logged op addresses — committed ("b") and reference-served
        # ("r") alike, uncached reads included — plus every shared line
        # the state diff recorded bytes for and every changed word (its
        # pre-version anchors the recorded post-version).  A slot on a
        # non-shared array is unpinnable (private words carry no
        # versions), so it vetoes the key.
        lw = self.params.line_words
        lines = set(shared_lines)
        for op in ops:
            plan, flats = op[2], op[3]
            for i, slot in enumerate(plan.slots):
                if not slot.shared:
                    self._plane_veto.add(key)
                    return None
                lines.update(
                    np.unique((slot.base + flats[i]) // lw).tolist())
        lines.update(np.unique(chg // lw).tolist())
        if lines:
            larr = np.fromiter(lines, dtype=np.int64, count=len(lines))
            larr.sort()
            words = (larr[:, None] * lw
                     + np.arange(lw, dtype=np.int64)).reshape(-1)
            words = words[words < memory.versions_flat.shape[0]]
        else:
            words = _EMPTY_I64

        counts_delta = None
        if tr is not None:
            counts_delta = {k: n - pre_counts.get(k, 0)
                            for k, n in tr.counts.items()
                            if n != pre_counts.get(k, 0)}
        reasons_delta = {r: n - pre_reasons.get(r, 0)
                         for r, n in self.fallback_reasons.items()
                         if n != pre_reasons.get(r, 0)}
        tag_pe, tag_idx, tag_val = tag_scatter
        row_pe, row_idx, row_data, row_vers = row_scatter
        clk_idx, clk_val = clock_scatter
        # Scatter targets are the machine's flat plane aliases, so the
        # per-row (pe, line) index pairs collapse to single flat indices.
        n_lines = machine.cache_tags.shape[1]
        tag_flat = tag_pe * n_lines + tag_idx
        row_flat = row_pe * n_lines + row_idx
        # A dense epoch (a quarter or more of all cache rows rewritten —
        # the norm at high PE counts, where every PE streams shared
        # lines) replays faster as three full-plane copies than as
        # scatters.  Only chain-follow replay may take the copies: its
        # machine state is bit-identical to the recorded pre-state, so
        # rows the epoch never touched are overwritten with themselves.
        # Under a signature hit untouched dead rows are NOT pinned, so
        # that mode must keep the scatters.
        if row_flat.size * 4 >= machine.cache_tags.size:
            cache_full = (machine.cache_tags.copy(),
                          machine.cache_data.copy(),
                          machine.cache_vers.copy())
        else:
            cache_full = None
        entry = _PlaneEntry(
            chg, mem_vals, mem_vers, tag_flat, tag_val,
            row_flat, row_data, row_vers, cache_full, clk_idx, clk_val,
            per_pe, chain, refs,
            self.batch_chunks - pre_chunks,
            self.batch_fallbacks - pre_falls, reasons_delta,
            mst.stale_reads - pre_stale,
            tuple(mst.stale_examples[pre_nex:]), counts_delta)

        sig_pes = tuple(PE.plane_sig_from_snapshot(s) for s in pre)
        tmode = 0 if tr is None else 1
        memo = self._plane_memo.get(key)
        if memo is None:
            sig = (sig_pes, pre_versions[words].tobytes(), pre_nex, tmode)
            self._plane_memo[key] = (words, {sig: entry})
            return entry
        words0, variants = memo
        if not np.array_equal(words0, words):
            union = np.union1d(words0, words)
            if not np.array_equal(union, words0):
                # The pinned word set grew: prior variants were keyed on
                # the smaller set and are unreachable under the new one.
                variants = {}
                self._plane_memo[key] = (union, variants)
                words0 = union
        sig = (sig_pes, pre_versions[words0].tobytes(), pre_nex, tmode)
        if len(variants) < PLANE_VARIANT_CAP:
            variants[sig] = entry
        return entry

    def _plane_diff(self, pre: list, q_max: list):
        """Per-PE post-epoch diffs against the pre snapshots, assembled
        into cross-PE tag/row scatter planes, or None when some effect
        is not plane-attributable (content frozen into a dead set, a
        changed private line, or a touched line outside every declared
        array)."""
        machine = self.machine
        per_pe = []
        # Chain-follow payload, flattened by field kind rather than by
        # PE: replay then walks five homogeneous lists with no per-PE
        # tuple unpacking or None checks (most are empty most epochs).
        chain_stats = []
        chain_queues = []
        chain_vecs = []
        chain_lps = []
        chain_dls = []
        clk_idx_l = []
        clk_val_l = []
        shared_lines: Set[int] = set()
        tag_pe_l = []
        tag_idx_l = []
        tag_val_l = []
        row_pe_l = []
        row_idx_l = []
        row_data_l = []
        row_vers_l = []
        for pe_obj, snap, m in zip(machine.pes, pre, q_max):
            (clock0, stats0, tags0, data0, vers0, _q0, qi0, qd0, _tv0,
             vi0, _lp0, _dl0) = snap
            cache = pe_obj.cache
            st = pe_obj.stats
            int_delta = {}
            for f in _PLANE_INT:
                d = getattr(st, f) - stats0[f]
                if d:
                    int_delta[f] = d
            floats = tuple(getattr(st, f) for f in _PLANE_FLOAT)
            floats0 = tuple(stats0[f] for f in _PLANE_FLOAT)
            tag_chg = np.flatnonzero(tags0 != cache.tags)
            row_chg = np.flatnonzero(
                (tags0 != cache.tags)
                | (data0 != cache.data).any(axis=1)
                | (vers0 != cache.vers).any(axis=1))
            for r in row_chg.tolist():
                tag = int(cache.tags[r])
                if tag < 0:
                    if ((data0[r] != cache.data[r]).any()
                            or (vers0[r] != cache.vers[r]).any()):
                        # Content written into a set that was then
                        # invalidated (ghost refill): restorable from no
                        # signature-protected source.
                        return None
                    continue  # pure invalidation: the tag scatter covers it
                name, shared = self._plane_line_owner(tag)
                if name is None or not shared:
                    # Private rows cannot be restored by scatter (their
                    # backing words carry no versions for the signature
                    # to pin), and unowned lines have no source at all.
                    return None
                # Record the bytes: a stale-but-legal cached copy is the
                # whole point of the model, so refilling from final
                # memory at replay would be wrong.  Soundness: the
                # signature pins this line's memory versions, and
                # version equality implies value equality.
                row_pe_l.append(pe_obj.pe_id)
                row_idx_l.append(r)
                row_data_l.append(cache.data[r].copy())
                row_vers_l.append(cache.vers[r].copy())
                shared_lines.add(tag)
            if tag_chg.size:
                tag_pe_l.append(np.full(tag_chg.shape[0], pe_obj.pe_id,
                                        dtype=np.int64))
                tag_idx_l.append(tag_chg)
                tag_val_l.append(cache.tags[tag_chg].copy())
            # Compact replay record: store only what the epoch changed
            # for this PE.  Every omitted field is either pinned by the
            # signature (so at replay time it already holds the recorded
            # value) or replayed as a zero delta — skipping it is exact,
            # and the replay loop is the plane's main O(n_pes) cost.
            float_items = tuple(
                (f, v) for f, v0, v in zip(_PLANE_FLOAT, floats0, floats)
                if v != v0)
            queue = pe_obj.queue
            qi_d = queue.issued - qi0
            qd_d = queue.dropped - qd0
            # Any push bumps ``issued``, so an unchanged queue implies
            # the epoch high-water m never exceeded the (unchanged)
            # depth and the max(hw, m) repair is a no-op.
            if (qi_d or qd_d
                    or tuple(queue.snapshot()) != snap[5]):
                q_rec = (tuple(queue.entries), qi_d, qd_d, m)
            else:
                q_rec = None
            vectors = pe_obj.vectors
            vi_d = vectors.issued - vi0
            if vi_d or tuple(vectors.snapshot()) != snap[8]:
                v_rec = (tuple(vectors.transfers), vi_d)
            else:
                v_rec = None
            lp = pe_obj.last_prefetch_pe
            if lp == snap[10]:
                lp = _SAME
            dl = (frozenset(pe_obj.dropped_lines)
                  if pe_obj.dropped_lines != snap[11] else None)
            clock = pe_obj.clock
            if (clock == clock0 and not int_delta and not float_items
                    and q_rec is None and v_rec is None and lp is _SAME
                    and dl is None):
                continue  # idle PE: nothing to replay
            if clock != clock0:
                clk_idx_l.append(pe_obj.pe_id)
                clk_val_l.append(clock)
            # The PE object and its stats __dict__ are stored directly:
            # both live as long as this interpreter (plancache._reset
            # zeroes the stats in place, never rebinds them).
            stats_dict = pe_obj.stats.__dict__
            per_pe.append((
                pe_obj, stats_dict,
                tuple(int_delta.items()), float_items, q_rec, v_rec,
                lp, dl))
            # Chain payload: in chain-follow mode the pre-state is
            # bit-identical to the recorded pre-state, so every changed
            # counter can be applied as a recorded absolute (a store,
            # no read-add) and queue/vector totals likewise (high_water
            # is already repaired to max(pre, M) here).  The queue and
            # vector objects are stored directly: plancache._reset
            # clears them in place, never rebinds them.
            for f in int_delta:
                chain_stats.append((stats_dict, f, stats_dict[f]))
            for f, v in float_items:
                chain_stats.append((stats_dict, f, v))
            if q_rec is not None:
                chain_queues.append((queue, tuple(queue.entries),
                                     queue.issued, queue.dropped,
                                     queue.high_water))
            if v_rec is not None:
                chain_vecs.append((vectors, tuple(vectors.transfers),
                                   vectors.issued))
            if lp is not _SAME:
                chain_lps.append((pe_obj, lp))
            if dl is not None:
                chain_dls.append((pe_obj, dl))
        if tag_pe_l:
            tag_scatter = (np.concatenate(tag_pe_l),
                           np.concatenate(tag_idx_l),
                           np.concatenate(tag_val_l))
        else:
            tag_scatter = (_EMPTY_I64, _EMPTY_I64, _EMPTY_I64)
        if row_pe_l:
            row_scatter = (np.asarray(row_pe_l, dtype=np.int64),
                           np.asarray(row_idx_l, dtype=np.int64),
                           np.stack(row_data_l),
                           np.stack(row_vers_l))
        else:
            lw = self.params.line_words
            row_scatter = (_EMPTY_I64, _EMPTY_I64,
                           np.empty((0, lw), dtype=np.float64),
                           np.empty((0, lw), dtype=np.int64))
        if clk_idx_l:
            clock_scatter = (np.asarray(clk_idx_l, dtype=np.int64),
                             np.asarray(clk_val_l, dtype=np.float64))
        else:
            clock_scatter = (_EMPTY_I64, _EMPTY_I64)
        chain = (tuple(chain_stats), tuple(chain_queues),
                 tuple(chain_vecs), tuple(chain_lps), tuple(chain_dls))
        return (per_pe, chain, clock_scatter, shared_lines, tag_scatter,
                row_scatter)

    def _plane_crosscheck(self, loop: Loop, ops: list, pre: list,
                          tag_scatter) -> bool:
        """Independent validation of recorded tag commits with the
        stacked multi-PE classifier, where the epoch shape admits one:
        no preamble, every PE ran exactly one batch-committed chunk of
        the same prefetch-free plan, and no queue/dropped state existed
        — so (no-write-allocate) the cacheable read streams against the
        stacked pre-epoch tags fully determine every tag change.
        Returns False on mismatch (the key is then vetoed)."""
        if loop.preamble or not ops:
            return True
        plan0 = ops[0][2]
        if plan0.pf_idx or not plan0.cached_idx:
            return True
        seen = set()
        for op in ops:
            if op[0] != "b" or op[1] in seen or op[2] is not plan0:
                return True
            seen.add(op[1])
        for snap in pre:
            if snap[5] or snap[11]:  # queue entries / dropped lines
                return True
        lw = self.params.line_words
        n_lines = self.params.n_lines
        streams = []
        pe_of = []
        for op in ops:
            pe, plan, flats = op[1], op[2], op[3]
            cols = [(plan.slots[i].base + flats[i]) // lw
                    for i in plan.cached_idx]
            stream = np.stack(cols, axis=1).reshape(-1)
            streams.append(stream)
            pe_of.append(np.full(stream.shape[0], pe, dtype=np.int64))
        tags0 = np.stack([snap[2] for snap in pre])
        cls = classify_events_multi(np.concatenate(streams), None,
                                    np.concatenate(pe_of), n_lines, tags0)
        want: Dict[int, list] = {}
        for cs, cl in zip(cls.changed_sets.tolist(),
                          cls.changed_lines.tolist()):
            want.setdefault(cs // n_lines, []).append((cs % n_lines, cl))
        tag_pe, tag_idx, tag_val = tag_scatter
        got: Dict[int, list] = {}
        for p, ix, tv in zip(tag_pe.tolist(), tag_idx.tolist(),
                             tag_val.tolist()):
            got.setdefault(p, []).append((ix, tv))
        for pe_id in range(len(pre)):
            # Per-PE segments were built from flatnonzero output, so the
            # recorded (set, tag) pairs are already sorted by set index.
            if sorted(want.get(pe_id, [])) != got.get(pe_id, []):
                return False
        return True

    def _plane_replay(self, entry: _PlaneEntry,
                      chain: bool = False) -> None:
        """Re-apply one recorded epoch as cross-PE scatters — shared
        memory words, stacked cache tag/row planes — then a small per-PE
        loop for clocks, stats, and prefetch hardware.  No value pass
        re-runs: the signature pins every input, so the recorded bytes
        ARE the live outcome."""
        machine = self.machine
        memory = machine.memory
        if entry.mem_idx.size:
            memory.values_flat[entry.mem_idx] = entry.mem_vals
            memory.versions_flat[entry.mem_idx] = entry.mem_vers
        # Per-PE caches are row views of these planes (DirectMappedCache
        # .rebase), so the stacked scatters update every cache at once.
        if chain and entry.cache_full is not None:
            # Dense epoch in chain-follow mode: the pre-state is
            # bit-identical to the recorded one, so restoring the full
            # recorded post planes is exact (and much cheaper than the
            # equivalent near-total scatter).
            tags_f, data_f, vers_f = entry.cache_full
            np.copyto(machine.cache_tags, tags_f)
            np.copyto(machine.cache_data, data_f)
            np.copyto(machine.cache_vers, vers_f)
        else:
            if entry.tag_flat.size:
                machine.cache_tags_flat[entry.tag_flat] = entry.tag_val
            if entry.row_flat.size:
                machine.cache_data_rows[entry.row_flat] = entry.row_data
                machine.cache_vers_rows[entry.row_flat] = entry.row_vers
        # Clocks are absolutes pinned by the signature, so one scatter
        # on the stacked clock plane serves both replay modes.
        if entry.clk_idx.size:
            machine.clocks[entry.clk_idx] = entry.clk_val
        if chain:
            # Chain-follow mode: the current state is bit-identical to
            # the recorded pre-state, so every per-PE field can be set
            # to its recorded absolute (a store, no read-add).  The
            # payload is flattened by kind into homogeneous lists.
            # PrefetchEntry / VectorTransfer objects are never mutated
            # after construction, so the recorded tuples can be shared.
            c_stats, c_queues, c_vecs, c_lps, c_dls = entry.chain
            for d, f, v in c_stats:
                d[f] = v
            for queue, q_entries, qi, qd, q_hw in c_queues:
                queue.entries = list(q_entries)
                queue.issued = qi
                queue.dropped = qd
                queue.high_water = q_hw
            for vectors, tv_transfers, vi in c_vecs:
                vectors.transfers = list(tv_transfers)
                vectors.issued = vi
            for pe_obj, lp in c_lps:
                pe_obj.last_prefetch_pe = lp
            for pe_obj, dl in c_dls:
                pe_obj.dropped_lines = set(dl)
        else:
            for rec in entry.per_pe:
                (pe_obj, d, int_items, float_items, q_rec, v_rec,
                 lp, dl) = rec
                # Counter updates go through the stats instance __dict__:
                # the field names come from STAT_FIELDS (validated once
                # at module load), floats are recorded absolutes, ints
                # deltas.
                for f, dv in int_items:
                    d[f] = d[f] + dv
                for f, v in float_items:
                    d[f] = v
                if q_rec is not None:
                    q_entries, qi_d, qd_d, q_m = q_rec
                    queue = pe_obj.queue
                    queue.entries = list(q_entries)
                    queue.issued += qi_d
                    queue.dropped += qd_d
                    if q_m > queue.high_water:
                        queue.high_water = q_m
                if v_rec is not None:
                    tv_transfers, vi_d = v_rec
                    vectors = pe_obj.vectors
                    vectors.transfers = list(tv_transfers)
                    vectors.issued += vi_d
                if lp is not _SAME:
                    pe_obj.last_prefetch_pe = lp
                if dl is not None:
                    pe_obj.dropped_lines = set(dl)
        mst = machine.stats
        mst.stale_reads += entry.stale_reads
        if entry.stale_examples:
            mst.stale_examples.extend(entry.stale_examples)
        tr = machine.tracer
        if tr is not None and entry.counts:
            for kind, n in entry.counts.items():
                tr.add_counts(kind, n)
        self.batch_chunks += entry.chunks
        self.batch_fallbacks += entry.falls
        if entry.reasons:
            fr = self.fallback_reasons
            for reason, n in entry.reasons.items():
                fr[reason] = fr.get(reason, 0) + n
        self.batch_refs += entry.refs
        self.plane_refs += entry.refs
        self.plane_chunks += 1

    # ------------------------------------------------------------------
    # chunk execution
    # ------------------------------------------------------------------
    def _fall(self, reason: str) -> bool:
        self.batch_fallbacks += 1
        fr = self.fallback_reasons
        fr[reason] = fr.get(reason, 0) + 1
        return False

    def _note_skip(self, reason: str) -> None:
        """Record a reason that routes work to the reference path without
        counting it as a chunk-level fallback (e.g. chunks below the batch
        threshold, where the per-iteration path is simply cheaper)."""
        fr = self.fallback_reasons
        fr[reason] = fr.get(reason, 0) + 1

    def _chunk_guards(self, plan: _Plan, env: dict, pe_obj,
                      skip: Optional[str] = None) -> Optional[str]:
        """None when every chunk-level guard passes, else the reason code."""
        machine = self.machine
        if machine.race_check or machine.trace_enabled:
            return "trace_or_race"
        if machine.protocol is not None:
            # Hardware-protocol versions: every access mutates the
            # protocol's line-state machine (and the bus/home horizons),
            # which is defined over the reference event order.  Route
            # the chunk to the exact reference closures so interconnect
            # stats stay exact.
            return "protocol"
        if machine.faults is not None or machine.oracle is not None:
            # Fault injection and the oracle are defined over the reference
            # event order; faulted chunks always take the exact fallback.
            self.fault_fallbacks += 1
            if machine.faults is not None:
                machine.faults.stats.batch_fallbacks += 1
            return "fault_oracle"
        for name in plan.env_vars:
            if name != skip and type(env.get(name)) is not int:
                return "env_nonint"
        return None

    def _bind_slots(self, plan: _Plan, env: dict, V: np.ndarray):
        """(flats, pf_masks): per-slot flat vectors plus, for prefetch
        slots, the in-bounds mask.  (None, None) when a non-prefetch slot
        leaves its array bounds (the reference raises exactly there)."""
        vmin = int(V.min())
        vmax = int(V.max())
        flats: List[np.ndarray] = []
        masks: Optional[Dict[int, np.ndarray]] = None
        for i, slot in enumerate(plan.slots):
            if slot.role == "pf":
                flat, mask = slot.bind_pf(env, V)
                if masks is None:
                    masks = {}
                masks[i] = mask
                flats.append(flat)
                continue
            bound = slot.bind(env, V, vmin, vmax)
            if bound is None:
                return None, None  # out of bounds: reference raises exactly
            flats.append(bound)
        return flats, masks

    def _inflight(self, pe_obj) -> list:
        clock = pe_obj.clock
        return [t for t in pe_obj.vectors.transfers if t.completion > clock]

    def _exec_chunk(self, plan: _Plan, env: dict, pe: int, values) -> bool:
        """Service one PE's chunk in bulk; False means the caller must run
        the reference per-iteration path (nothing was mutated)."""
        machine = self.machine
        pe_obj = machine.pes[pe]
        T = len(values)
        if T == 0:
            return False
        if not self._force_batch and T * plan.n_events < MIN_BATCH_EVENTS:
            self._note_skip("tiny_chunk")
            return False
        reason = self._chunk_guards(plan, env, pe_obj)
        if reason is not None:
            return self._fall(reason)
        entry = ekey = None
        if self._memo_on(plan):
            vkey = ((values.start, values.stop, values.step)
                    if isinstance(values, range) else tuple(values))
            ekey = (id(plan), pe,
                    tuple(env[n] for n in plan.env_vars), vkey)
            entry = self._chunk_memo.get(ekey)
        if entry is not None:
            V = entry.V
            flats, pf_masks = entry.flats, entry.pf_masks
        else:
            if isinstance(values, range):
                V = np.arange(values.start, values.stop, values.step,
                              dtype=np.int64)
            else:
                V = np.asarray(values, dtype=np.int64)
            flats, pf_masks = self._bind_slots(plan, env, V)
            if flats is None:
                return self._fall("oob_bind")
            if ekey is not None and len(self._chunk_memo) < MEMO_CAP:
                entry = _MemoEntry(flats, pf_masks, V, None, T,
                                   plan.const_per_iter * T, None)
                self._memo_index(entry, plan)
                self._chunk_memo[ekey] = entry
        outcome = dtb_count = new_last = record = dtbF = None
        if plan.pf_idx or pe_obj.queue.entries or pe_obj.dropped_lines:
            if plan.pf_idx or not self._prefetch_disjoint(plan, pe_obj,
                                                          flats):
                if self._stale_overlap(plan, pe_obj, flats):
                    # A stale line the chunk touches: stale read hits /
                    # partial write-through refreshes need per-event order.
                    return self._fall("stale_overlap")
                if not self._replay_costs_ok:
                    return self._fall("replay_costs")
                if pe_obj.queue.squeeze is not None:
                    return self._fall("queue_squeeze")
                outcome, dtb_count, new_last, record, dtbF = \
                    self._replay_scan(plan, pe_obj, pe, T, flats, pf_masks)
                if outcome.hazard:
                    return self._fall("replay_hazard")
        sig = out = None
        if outcome is None and entry is not None:
            sig = self._memo_sig(entry, pe_obj)
            out = entry.variants.get(sig)
        if outcome is None and out is None \
                and self._stale_overlap(plan, pe_obj, flats):
            # A stale line the chunk touches: stale read hits / partial
            # write-through refreshes need per-event order.
            return self._fall("stale_overlap")
        self.batch_chunks += 1

        # -- value pass ----------------------------------------------------
        vsafe = entry.vec_safe if entry is not None else None
        if vsafe is None:
            vsafe = plan.vec_stmts is not None \
                and self._vector_safe(plan, flats)
            if entry is not None:
                entry.vec_safe = vsafe
        if vsafe:
            vecs = {plan.var: V}
            if self._plane_ops is not None:
                self._plane_ops.append(("b", pe, plan, flats))
            self._vector_value_pass(plan, env, pe, flats, vecs)
            env[plan.var] = int(V[-1])
        elif plan.seq_fn is not None:
            if self._plane_ops is not None:
                self._plane_ops.append(("b", pe, plan, flats))
            plan.seq_fn(values, env, pe)
            self._register_residue(plan, pe, flats)
        else:
            if self._plane_ops is not None:
                self._plane_ops.append(("b", pe, plan, flats))
            registers = plan.registers
            var = plan.var
            fns = plan.value_fns
            for v in values:
                env[var] = v
                registers.clear()
                for fn in fns:
                    fn(env, pe)
            if plan.final_clear:
                registers.clear()

        if out is not None:
            self._memo_replay(pe_obj, pe, out)
        elif outcome is None:
            rec = {} if sig is not None else None
            self._timing_pass(plan, pe_obj, pe, T, flats,
                              plan.const_per_iter * T, None,
                              self._inflight(pe_obj), rec)
            if rec is not None:
                entry.variants[sig] = rec
        else:
            self._replay_commit(plan, pe_obj, pe, T, flats, outcome,
                                dtb_count, new_last, record, dtbF)
        return True

    # ------------------------------------------------------------------
    # preamble memo
    # ------------------------------------------------------------------
    def _preamble_names(self, loop: Loop) -> Optional[Tuple[str, ...]]:
        """Free variable names of a memo-eligible preamble, or None when
        any statement is not a pure prefetch/invalidate (those run live:
        queue-touching scalar prefetches interleave with chunk replay)."""
        names: Set[str] = set()
        for stmt in loop.preamble:
            if not isinstance(stmt, (PrefetchVector, InvalidateLines)):
                return None
            for expr in stmt.expressions():
                for node in expr.walk():
                    if isinstance(node, VarRef):
                        names.add(node.name)
        return tuple(sorted(names))

    #: Float-valued stats fields a preamble mutates.  They are *pinned*
    #: in the memo key and *restored* as absolutes (fractional vector
    #: costs make delta replay inexact); the integer fields replay as
    #: deltas, which integer addition keeps exact on any base.
    _PREAMBLE_FLOAT = ("busy_cycles", "idle_cycles", "vector_stall_cycles")
    _PREAMBLE_INT = ("invalidations", "vector_prefetches", "vector_words")
    #: Event kinds a pure prefetch/invalidate preamble can emit; under a
    #: counts-only tracer the memo folds their count deltas on replay.
    _PREAMBLE_KINDS = ("invalidate", "vector_transfer")

    def _run_preamble(self, loop: Loop, preamble_fns, env_p: dict,
                      pe: int) -> None:
        """Memoise pure prefetch/invalidate preambles.

        A vector-prefetch preamble touches only this PE's clock, cache,
        vector unit and a fixed set of stats counters, and its effect is
        a pure function of the machine state it reads: env values, cache
        tags, the absolute clock, in-flight transfers and the float stat
        fields it accumulates into.  All of those are pinned in the memo
        key, so a recorded outcome replays bit-exactly by restoring the
        recorded absolutes — except line *installs*, which re-gather
        **live** memory (array values may have changed since record;
        install timing and tag evolution cannot), and integer counters,
        which replay as exact deltas.  Warm repeated runs are
        deterministic, so every preamble after the first run hits."""
        machine = self.machine
        pe_obj = machine.pes[pe]
        tr = machine.tracer
        if (machine.race_check or machine.trace_enabled
                or machine.faults is not None or machine.oracle is not None
                or (tr is not None
                    and not tr.counts_only(self._PREAMBLE_KINDS))):
            return super()._run_preamble(loop, preamble_fns, env_p, pe)
        info = self._preamble_info
        if loop.uid not in info:
            info[loop.uid] = self._preamble_names(loop)
        names = info[loop.uid]
        if names is None:
            return super()._run_preamble(loop, preamble_fns, env_p, pe)
        vec = pe_obj.vectors
        st = pe_obj.stats
        key = (loop.uid, pe, tr is not None,
               tuple(env_p.get(n) for n in names),
               pe_obj.clock,
               tuple(getattr(st, f) for f in self._PREAMBLE_FLOAT),
               pe_obj.cache.tags.tobytes(),
               tuple((t.array, t.line_lo, t.line_hi, t.completion)
                     for t in vec.transfers))
        out = self._preamble_memo.get(key)
        if out is not None:
            if out["bulk"] is not None:
                sets, word_ix = out["bulk"]
                pe_obj.cache.data[sets] = machine.memory.values_flat[word_ix]
                pe_obj.cache.vers[sets] = machine.memory.versions_flat[word_ix]
            else:
                for name, lines in out["installs"]:
                    machine._install_lines_bulk(pe_obj, name, lines)
            pe_obj.cache.tags[:] = out["tags"]
            for f, v in zip(self._PREAMBLE_FLOAT, out["floats"]):
                setattr(st, f, v)
            for f, d in out["ints"]:
                setattr(st, f, getattr(st, f) + d)
            pe_obj.clock = out["clock"]
            vec.transfers[:] = [VectorTransfer(a, lo, hi, c)
                                for a, lo, hi, c in out["transfers"]]
            vec.issued += out["issued"]
            if tr is not None:
                for kind, n in out["tr_counts"]:
                    tr.add_counts(kind, n)
            return
        before = [getattr(st, f) for f in self._PREAMBLE_INT]
        issued0 = vec.issued
        counts0 = ({k: tr.counts.get(k, 0) for k in self._PREAMBLE_KINDS}
                   if tr is not None else None)
        installs: list = []
        machine._pf_record = installs
        try:
            super()._run_preamble(loop, preamble_fns, env_p, pe)
        finally:
            machine._pf_record = None
        if len(self._preamble_memo) < MEMO_CAP:
            # Consolidate the install records into one gather/scatter when
            # every installed array is shared: shared lines are line-aligned
            # views of the flat backing, and replaying last-write-wins per
            # cache set from *live* memory is exactly what the per-record
            # install loop does — tags are restored wholesale right after.
            bulk = None
            if installs and all(machine.memory.decls[name].is_shared
                                for name, _ in installs):
                lw = machine._lw
                n_lines = pe_obj.cache.n_lines
                last: dict = {}
                for _name, lines in installs:
                    for line in lines:
                        last[line % n_lines] = line
                sets = np.fromiter(last.keys(), dtype=np.int64,
                                   count=len(last))
                ln = np.fromiter(last.values(), dtype=np.int64,
                                 count=len(last))
                bulk = (sets,
                        ln[:, None] * lw + np.arange(lw, dtype=np.int64))
            self._preamble_memo[key] = {
                "installs": installs,
                "bulk": bulk,
                "tags": pe_obj.cache.tags.copy(),
                "floats": tuple(getattr(st, f)
                                for f in self._PREAMBLE_FLOAT),
                "ints": tuple(
                    (f, getattr(st, f) - b)
                    for f, b in zip(self._PREAMBLE_INT, before)
                    if getattr(st, f) != b),
                "clock": pe_obj.clock,
                "transfers": tuple((t.array, t.line_lo, t.line_hi,
                                    t.completion) for t in vec.transfers),
                "issued": vec.issued - issued0,
                "tr_counts": tuple(
                    (k, tr.counts.get(k, 0) - c0)
                    for k, c0 in (counts0 or {}).items()
                    if tr.counts.get(k, 0) != c0),
            }

    # ------------------------------------------------------------------
    # chunk-outcome memo
    # ------------------------------------------------------------------
    def _memo_on(self, plan: _Plan) -> bool:
        """Memoing is sound only when the run's event consumers are
        replayable: no tracer, or a counts-only tracer (whose per-chunk
        counter folds are part of the stored outcome).  Full event
        synthesis needs the live per-event matrices, so it bypasses."""
        tr = self.machine.tracer
        return tr is None or tr.counts_only(plan.event_kinds)

    def _memo_index(self, entry: _MemoEntry, plan: _Plan) -> None:
        """Precompute the signature gather indices: cache sets of every
        cacheable slot (classification + residency), plus the unique
        shared lines whose version words decide staleness."""
        lw = self.params.line_words
        nl = self.machine.pes[0].cache.n_lines
        sets_parts: List[np.ndarray] = []
        shared_parts: List[np.ndarray] = []
        for i, slot in enumerate(plan.slots):
            if slot.role in ("ur", "pf") or not slot.cacheable:
                continue
            lines = (slot.base + entry.flats[i]) // lw
            sets_parts.append(lines % nl)
            if slot.shared:
                shared_parts.append(lines)
        entry.sets_all = (np.unique(np.concatenate(sets_parts))
                          if sets_parts else _EMPTY_I64)
        if shared_parts:
            su = np.unique(np.concatenate(shared_parts))
            entry.sets_shared = su % nl
            entry.words_idx = (su[:, None] * lw
                               + np.arange(lw, dtype=np.int64)).reshape(-1)

    def _memo_sig(self, entry: _MemoEntry, pe_obj) -> tuple:
        """Machine-state signature: everything the timing outcome can
        depend on beyond the (already-keyed) plan/env/iterations.  Cache
        tags at the chunk's sets govern classification, evictions and
        refill residency; version words govern the stale-overlap guard;
        queue/dropped lines govern prefetch disjointness; the absolute
        clock plus the vector-transfer list governs stall resolution
        (and is collapsed to ``None`` when nothing is in flight, making
        the outcome clock-relative)."""
        cache = pe_obj.cache
        tags_b = cache.tags[entry.sets_all].tobytes()
        if entry.sets_shared is not None:
            vers_b = cache.vers[entry.sets_shared].tobytes()
            mem_b = self.machine.memory.versions_flat[
                entry.words_idx].tobytes()
        else:
            vers_b = mem_b = b""
        q = pe_obj.queue
        if q.entries or pe_obj.dropped_lines:
            qpart: Optional[tuple] = (
                tuple(e.line_addr for e in q.entries),
                tuple(sorted(pe_obj.dropped_lines)))
        else:
            qpart = None
        tpart: Optional[tuple] = None
        clock = pe_obj.clock
        for t in pe_obj.vectors.transfers:
            if t.completion > clock:
                tpart = (clock,
                         tuple((tr.array, tr.line_lo, tr.line_hi,
                                tr.completion)
                               for tr in pe_obj.vectors.transfers))
                break
        return (tags_b, vers_b, mem_b, qpart, tpart)

    def _memo_replay(self, pe_obj, pe: int, out: dict) -> None:
        """Re-apply a stored chunk outcome: the exact sequence of scalar
        adds, scatters and live-memory refills the recorded
        :meth:`_timing_pass` performed."""
        pe_obj.stats.add_bulk(**out["stats"])
        self.batch_refs += out["refs"]
        tr = self.machine.tracer
        if tr is not None:
            hits, misses, fetches, writes = out["counts"]
            tr.add_counts("read_hit", hits)
            tr.add_counts("read_miss", misses)
            tr.add_counts("bypass_fetch", fetches)
            tr.add_counts("write", writes)
        clock_abs = out["clock_abs"]
        if clock_abs is not None:
            for s in out["stalls"]:
                pe_obj.stats.idle_cycles += s
                pe_obj.stats.vector_stall_cycles += s
            pe_obj.clock = clock_abs
        else:
            pe_obj.clock += out["total"]
        cache = pe_obj.cache
        tags_sets = out["tags_sets"]
        if tags_sets is not None:
            cache.tags[tags_sets] = out["tags_lines"]
        for lines, base, array in out["priv_fills"]:
            self._fill_private_lines(cache, lines, base, array, pe)
        if out["shared_fill"] is not None:
            memory = self.machine.memory
            bulk_fill_lines(cache, out["shared_fill"], memory.values_flat,
                            memory.versions_flat)

    def _stale_overlap(self, plan: _Plan, pe_obj,
                       flats: List[np.ndarray]) -> bool:
        """True when a stale resident line intersects a line the chunk
        touches — a cached shared read (would return the stale cached value),
        a cacheable shared write (write-through refreshes only the written
        word; the bulk commit would refresh the whole line), or a prefetch
        target (invalidate/ghost-refill assumes cache and memory agree).
        Disjoint stale residue is exact: chunk reads classify against fresh
        lines and the commit refills only chunk lines, leaving the stale
        data bit-identical to what the reference would leave."""
        if not plan.touches_shared_cache:
            return False
        stale = stale_lines(pe_obj.cache, self.machine.memory.versions_flat)
        if not stale.size:
            return False
        lw = self.params.line_words
        for i, slot in enumerate(plan.slots):
            if slot.role == "ur" or not (slot.shared and slot.cacheable):
                continue
            # pf flats hold a harmless 0 for out-of-bounds look-aheads; a
            # spurious base-line match costs only an exact fallback.
            lines = (slot.base + flats[i]) // lw
            if np.isin(lines, stale).any():
                return True
        return False

    def _prefetch_disjoint(self, plan: _Plan, pe_obj,
                           flats: List[np.ndarray]) -> bool:
        """True when leftover prefetch state (queued entries, dropped-line
        marks) cannot intersect any cacheable read of the chunk — then the
        plain fast timing path is exact despite a non-empty queue."""
        pend = pe_obj.queue.lines()
        if pe_obj.dropped_lines:
            dl = np.fromiter(pe_obj.dropped_lines, dtype=np.int64,
                             count=len(pe_obj.dropped_lines))
            pend = np.concatenate([pend, dl]) if pend.size else dl
        if not pend.size:
            return True
        lw = self.params.line_words
        for i in plan.cached_idx:
            slot = plan.slots[i]
            lines = (slot.base + flats[i]) // lw
            if np.isin(lines, pend).any():
                return False
        return True

    def _replay_scan(self, plan: _Plan, pe_obj, pe: int, Tt: int,
                     flats: List[np.ndarray], pf_masks):
        """Prepare the chunk's replay-event matrices and run the exact
        :func:`replay_chunk` scan against shadow PE state.  Returns
        ``(outcome, dtb_count, new_last_prefetch_pe, record, dtbF)``,
        where ``record``/``dtbF`` are the per-event outcome codes and
        DTB-setup flags for event synthesis (``None`` unless a tracer
        wants tuples); nothing live is mutated, so a hazard outcome
        costs only the scan."""
        params = self.params
        lw = params.line_words
        n_slots = plan.n_events
        kind = np.zeros((Tt, n_slots), dtype=np.int8)
        cost = np.zeros((Tt, n_slots), dtype=np.float64)
        line = np.full((Tt, n_slots), -1, dtype=np.int64)
        miss = np.zeros((Tt, n_slots), dtype=np.float64)
        unc = np.zeros((Tt, n_slots), dtype=np.float64)
        loc = np.zeros((Tt, n_slots), dtype=bool)
        shr = np.zeros((Tt, n_slots), dtype=bool)
        fill = np.zeros((Tt, n_slots), dtype=np.float64)
        home = np.zeros((Tt, n_slots), dtype=np.int64)
        inval = np.zeros((Tt, n_slots), dtype=bool)
        slot_of = np.zeros((Tt, n_slots), dtype=np.int64)
        for i, slot in enumerate(plan.slots):
            slot_of[:, i] = i
            role = slot.role
            if role == "cr":
                kind[:, i] = RE_READ
                line[:, i] = (slot.base + flats[i]) // lw
                if slot.shared:
                    own = slot.owner_table[flats[i]]
                    miss[:, i] = self._lat_table(pe, "r", slot.extra)[own]
                    unc[:, i] = self._lat_table(pe, "u", slot.extra)[own]
                    loc[:, i] = own == pe
                    shr[:, i] = True
                else:
                    miss[:, i] = float(params.local_mem)
                    loc[:, i] = True
            elif role == "ur":
                own = slot.owner_table[flats[i]]
                cost[:, i] = self._lat_table(pe, "u", slot.extra)[own]
            elif role == "w":
                if slot.shared:
                    own = slot.owner_table[flats[i]]
                    cost[:, i] = self._lat_table(pe, "w", slot.extra)[own]
                else:
                    cost[:, i] = float(params.write_local)
                if slot.cacheable:
                    kind[:, i] = RE_WRITE
                    line[:, i] = (slot.base + flats[i]) // lw
            else:  # 'pf': out-of-bounds look-aheads degrade to bare issues
                m = pf_masks[i]
                kind[:, i] = np.where(m, RE_PF, RE_COST)
                cost[:, i] = float(params.prefetch_issue)
                line[:, i] = np.where(m, (slot.base + flats[i]) // lw, -1)
                if slot.shared:
                    home[:, i] = slot.owner_table[flats[i]]
                else:
                    home[:, i] = pe
                fill[:, i] = self._lat_table(pe, "r", 0.0)[home[:, i]]
                inval[:, i] = slot.inval
        kindF = kind.ravel()
        costF = cost.ravel()
        homeF = home.ravel()
        tr = self.machine.tracer
        record = None
        if tr is not None and not tr.counts_only(plan.event_kinds):
            record = [REC_NONE] * (Tt * n_slots)
        dtb_count = 0
        new_last = None
        dtbF = None
        pf_pos = np.flatnonzero(kindF == RE_PF)
        if pf_pos.size:
            # DTB setups chain over successive in-bounds prefetch issues:
            # charged whenever the home PE changes from the previous issue.
            homes = homeF[pf_pos]
            prev = np.empty(pf_pos.size, dtype=np.int64)
            lp = pe_obj.last_prefetch_pe
            prev[0] = -1 if lp is None else lp
            prev[1:] = homes[:-1]
            dtb = homes != prev
            costF[pf_pos[dtb]] += float(params.dtb_setup)
            dtb_count = int(dtb.sum())
            new_last = int(homes[-1])
            if record is not None:
                dtbF = np.zeros(kindF.shape[0], dtype=bool)
                dtbF[pf_pos[dtb]] = True
        pre = np.tile(plan.const_before, (Tt, 1))
        if Tt > 1:
            pre[1:, 0] += plan.tail_const
        outcome = replay_chunk(
            kindF, pre.ravel(), costF, line.ravel(), miss.ravel(),
            unc.ravel(), loc.ravel(), shr.ravel(), fill.ravel(), homeF,
            inval.ravel(), slot_of.ravel(), [s.array for s in plan.slots],
            pe_obj.cache.tags, pe_obj.cache.n_lines, pe_obj.clock,
            plan.tail_const, pe_obj.queue.snapshot(), pe_obj.queue.capacity,
            pe_obj.dropped_lines,
            [(t.line_lo, t.line_hi, t.completion)
             for t in pe_obj.vectors.transfers],
            float(params.cache_hit), float(params.prefetch_extract),
            4 * float(params.remote_base), record=record)
        return outcome, dtb_count, new_last, record, dtbF

    def _replay_commit(self, plan: _Plan, pe_obj, pe: int, Tt: int,
                       flats: List[np.ndarray], outcome, dtb_count: int,
                       new_last, record=None, dtbF=None) -> None:
        """Apply one hazard-free replay outcome to the live machine."""
        params = self.params
        memory = self.machine.memory
        st = pe_obj.stats
        n_reads = len(plan.cached_idx) + len(plan.uncached_idx)
        n_writes = len(plan.write_idx)
        byp = ulr = urr = rw = 0
        for i in plan.uncached_idx:
            slot = plan.slots[i]
            if slot.bypass:
                byp += Tt
            else:
                own = slot.owner_table[flats[i]]
                nlocal = int((own == pe).sum())
                ulr += nlocal
                urr += Tt - nlocal
        for i in plan.write_idx:
            slot = plan.slots[i]
            if slot.shared:
                rw += int((slot.owner_table[flats[i]] != pe).sum())
        c = outcome.counters
        st.add_bulk(
            reads=Tt * n_reads, writes=Tt * n_writes,
            cache_hits=c["cache_hits"], cache_misses=c["cache_misses"],
            local_fills=c["local_fills"], remote_fills=c["remote_fills"],
            bypass_reads=byp + c["pf_drop_bypass"],
            uncached_local_reads=ulr, uncached_remote_reads=urr,
            remote_writes=rw, busy_cycles=outcome.busy,
            prefetch_issued=c["prefetch_issued"],
            pf_dropped=c["pf_dropped"],
            pf_drop_bypass=c["pf_drop_bypass"],
            prefetch_extracted=c["prefetch_extracted"],
            invalidations=c["invalidations"], dtb_setups=dtb_count)
        for code, s in outcome.stalls:  # ordered, exactly as wait_until
            st.idle_cycles += s
            if code == STALL_VECTOR:
                st.vector_stall_cycles += s
            else:
                st.prefetch_late_cycles += s
        pe_obj.clock = outcome.clock

        # -- cache / prefetch state commit --------------------------------
        cache = pe_obj.cache
        new_tags = np.asarray(outcome.tags, dtype=np.int64)
        changed = np.flatnonzero(new_tags != cache.tags)
        if changed.size:
            cache.tags[changed] = new_tags[changed]
        pe_obj.queue.replace_entries(
            PrefetchEntry(line_addr=ln, array=ar, arrival=arr,
                          issued_at=isd, home_pe=hm)
            for (ln, arr, isd, hm, ar) in outcome.queue)
        pe_obj.queue.issued += outcome.q_issued
        pe_obj.queue.dropped += outcome.q_dropped
        if outcome.q_hw > pe_obj.queue.high_water:
            pe_obj.queue.high_water = outcome.q_hw
        pe_obj.dropped_lines = outcome.dropped
        if new_last is not None:
            pe_obj.last_prefetch_pe = new_last
        lw = params.line_words
        shared_lines: List[np.ndarray] = []
        for i in plan.cached_idx + plan.write_idx:
            slot = plan.slots[i]
            if not slot.cacheable:
                continue
            lines = (slot.base + flats[i]) // lw
            if slot.shared:
                shared_lines.append(lines)
            else:
                self._fill_private_lines(cache, lines, slot.base, slot.array,
                                         pe)
        if shared_lines:
            cat = np.concatenate(shared_lines)
            bulk_fill_lines(cache, np.flatnonzero(np.bincount(cat)),
                            memory.values_flat, memory.versions_flat)
        # Ghost sets (invalidated, tag already -1) keep data frozen at
        # invalidation time; hazard-free means no later write dirtied the
        # line, so refilling from final memory reproduces it exactly.
        for (s, ln, array) in outcome.ghosts:
            words, vers = self.machine._line_contents(array, ln, pe)
            cache.data[s] = words
            cache.vers[s] = vers
        self.batch_refs += Tt * (n_reads + n_writes)

        tr = self.machine.tracer
        if tr is not None:
            if record is None:
                # Counts-only: every kind this chunk can emit is sampled
                # out, so tally the exact per-kind counts without tuples.
                tr.add_counts("read_hit", c["cache_hits"])
                tr.add_counts("read_miss", c["cache_misses"])
                tr.add_counts("pf_complete", c["prefetch_extracted"])
                tr.add_counts("bypass_fetch",
                              byp + ulr + urr + c["pf_drop_bypass"])
                tr.add_counts("write", Tt * n_writes)
                tr.add_counts("pf_issue", outcome.q_issued)
                tr.add_counts("pf_coalesce",
                              c["prefetch_issued"] - outcome.q_issued)
                tr.add_counts("pf_drop", c["pf_dropped"])
                tr.add_counts("invalidate", c["invalidations"])
            else:
                self._synth_replay_events(plan, pe, Tt, flats, record, dtbF,
                                          tr)

    def _synth_replay_events(self, plan: _Plan, pe: int, Tt: int,
                             flats: List[np.ndarray], record, dtbF,
                             tr) -> None:
        """Emit a replay chunk's machine events, row-major (iteration,
        slot) — exactly the order the reference interpreter would have
        emitted them.  Static read/write events come from the slot roles;
        dynamic read and prefetch outcomes come from the scan's record
        codes (an invalidate kill precedes its prefetch event, as in
        ``Machine.prefetch_line``)."""
        emit = tr.emit
        lw = self.params.line_words
        dtb_l = dtbF.tolist() if dtbF is not None else None
        cols = []
        for i, slot in enumerate(plan.slots):
            role = slot.role
            if role == "pf":
                # flats holds a harmless 0 for out-of-bounds look-aheads;
                # their record code stays REC_NONE, so the bogus line is
                # never read.
                line_l = ((slot.base + flats[i]) // lw).tolist()
                cols.append(("pf", slot.array, line_l, None))
                continue
            flat_l = flats[i].tolist()
            eq_l = ((slot.owner_table[flats[i]] == pe).tolist()
                    if slot.shared else None)
            if role == "cr":
                cols.append(("cr", slot.array, flat_l, eq_l))
            elif role == "ur":
                if slot.bypass:
                    cols.append(("urb", slot.array, flat_l, None))
                else:
                    cols.append(("ur", slot.array, flat_l, eq_l))
            elif slot.shared:  # shared write
                cols.append(("ws", slot.array, flat_l, eq_l))
            else:
                cols.append(("wp", slot.array, flat_l, None))
        f = 0
        for t in range(Tt):
            for code, array, data_l, aux in cols:
                if code == "cr":
                    rc = record[f]
                    flat = data_l[t]
                    if rc == REC_HIT:
                        emit(("read_hit", pe, array, flat, 0))
                    elif rc == REC_MISS:
                        emit(("read_miss", pe, array, flat,
                              1 if aux is None else int(aux[t])))
                    elif rc == REC_EXTRACT:
                        emit(("pf_complete", pe, array, flat))
                    else:  # REC_DROP_BYPASS
                        emit(("bypass_fetch", pe, array, flat, "pf_drop"))
                elif code == "pf":
                    rc = record[f]
                    if rc != REC_NONE:
                        if rc & REC_KILL_FLAG:
                            emit(("invalidate", pe, array, 1, "prefetch",
                                  -1, -1))
                            rc &= ~REC_KILL_FLAG
                        dtb = 1 if dtb_l[f] else 0
                        line = data_l[t]
                        if rc == REC_PF_ISSUE:
                            emit(("pf_issue", pe, array, line, dtb))
                        elif rc == REC_PF_COALESCE:
                            emit(("pf_coalesce", pe, array, line, dtb))
                        else:  # REC_PF_DROP
                            emit(("pf_drop", pe, array, line, dtb))
                elif code == "urb":
                    emit(("bypass_fetch", pe, array, data_l[t], "bypass"))
                elif code == "ur":
                    emit(("bypass_fetch", pe, array, data_l[t],
                          "uncached_local" if aux[t] else "uncached_remote"))
                elif code == "ws":
                    emit(("write", pe, array, data_l[t], 1,
                          0 if aux[t] else 1))
                else:  # private write
                    emit(("write", pe, array, data_l[t], 0, 0))
                f += 1

    def _vector_safe(self, plan: _Plan, flats: List[np.ndarray]) -> bool:
        """True when statement-at-a-time gather/scatter reproduces the
        reference's per-iteration execution: every same-array (write, other)
        slot pair is elementwise-identical or fully disjoint, and each write
        slot's addresses are distinct across iterations."""
        for w, j in plan.alias_pairs:
            wf = flats[w]
            rf = flats[j]
            if wf.shape == rf.shape and np.array_equal(wf, rf):
                continue
            mask = np.zeros(int(max(wf.max(), rf.max())) + 1, dtype=bool)
            mask[wf] = True
            if mask[rf].any():
                return False
        for w in plan.write_idx:
            wf = flats[w]
            if wf.size > 1 and int(np.bincount(wf).max()) > 1:
                return False
        return True

    def _vector_value_pass(self, plan: _Plan, env: dict, pe: int,
                           flats: List[np.ndarray], vecs: dict) -> None:
        """Statement-at-a-time vectorised value pass, plus an epilogue that
        reconstructs the environment/register state the sequential pass
        would have left behind."""
        memory = self.machine.memory
        for op in plan.vec_stmts:
            if op[0] == "arr":
                _, k, fn, pops = op
                value = fn(env, pe, flats, vecs)
                slot = plan.slots[k]
                wf = flats[k]
                if slot.shared:
                    memory.values[slot.array][wf] = value
                    memory.versions[slot.array][wf] += 1
                else:
                    memory.private_values[slot.array][pe, wf] = value
                for registers, keys in pops:  # outer-ctx evictions: the
                    for key in keys:          # same keys every iteration,
                        registers.pop(key, None)  # so dropping once is exact
            else:
                _, name, fn = op
                vecs[name] = fn(env, pe, flats, vecs)
        for name in plan.assigned:
            v = vecs[name]
            env[name] = (float(v[-1])
                         if isinstance(v, np.ndarray) and v.ndim else float(v))
        self._register_residue(plan, pe, flats)

    def _timing_pass(self, plan: _Plan, pe_obj, pe: int, Tt: int,
                     flats: List[np.ndarray], const_total: float,
                     row_extra, transfers: list,
                     rec: Optional[dict] = None) -> None:
        """Charge the chunk's cycles/counters and commit cache state.

        ``const_total`` is every constant advance in the chunk (loop
        overheads + arithmetic); ``row_extra`` optionally adds per-iteration
        constants at iteration granularity (fused chunks); ``transfers`` are
        the PE's vector transfers still in flight at chunk start.  When
        ``rec`` is a dict, every externally visible effect (scalar adds,
        tag scatter, fill line sets) is also recorded into it so
        :meth:`_memo_replay` can re-apply the outcome bit-exactly under an
        identical machine-state signature."""
        params = self.params
        memory = self.machine.memory
        ch = float(params.cache_hit)
        n_slots = plan.n_events
        # Dense (Tt, n_slots) per-event cost matrix: every slot of a
        # non-prefetch plan is cr/ur/w, so all columns get filled and one
        # matrix sum replaces per-slot reductions (integral costs keep any
        # summation order exact).
        ev = np.empty((Tt, n_slots), dtype=np.float64)
        hit_cols: List[Optional[np.ndarray]] = [None] * n_slots
        line_cols: List[Optional[np.ndarray]] = [None] * n_slots
        eq_cols: List[Optional[np.ndarray]] = [None] * n_slots
        n_reads = len(plan.cached_idx) + len(plan.uncached_idx)
        n_writes = len(plan.write_idx)
        hits = misses = lf = rf = byp = ulr = urr = rw = 0
        cls = None
        cidx = plan.cached_idx
        lw = params.line_words
        # Slots that share a flats vector (unrolled-body duplicates) reuse
        # every derived gather: owner lookups, latency columns, line
        # addresses, and local-ownership counts are keyed by object id.
        own_cache: dict = {}
        eq_cache: dict = {}
        latcol_cache: dict = {}
        line_cache: dict = {}
        if cidx:
            addr_cache: dict = {}
            addr_mat = np.empty((Tt, len(cidx)), dtype=np.int64)
            for k, i in enumerate(cidx):
                slot = plan.slots[i]
                akey = (slot.base, id(flats[i]))
                addr = addr_cache.get(akey)
                if addr is None:
                    addr = slot.base + flats[i]
                    addr_cache[akey] = addr
                    line_cache[akey] = addr // lw
                addr_mat[:, k] = addr
                line_cols[i] = line_cache[akey]
            cls = pe_obj.cache.classify_trace(addr_mat.reshape(-1))
            ncr = len(cidx)
            hit_mat = (cls.outcomes == OUT_HIT).reshape(Tt, ncr)
            lat_mat = np.empty((Tt, ncr), dtype=np.float64)
            eq_mat = np.empty((Tt, ncr), dtype=bool)
            for k, i in enumerate(cidx):
                slot = plan.slots[i]
                hit_cols[i] = hit_mat[:, k]
                if slot.shared:
                    okey = (id(slot.owner_table), id(flats[i]))
                    own = own_cache.get(okey)
                    if own is None:
                        own = slot.owner_table[flats[i]]
                        own_cache[okey] = own
                        eq_cache[okey] = own == pe
                    table = self._lat_table(pe, "r", slot.extra)
                    lkey = (id(table), id(own))
                    lcol = latcol_cache.get(lkey)
                    if lcol is None:
                        lcol = table[own]
                        latcol_cache[lkey] = lcol
                    lat_mat[:, k] = lcol
                    eq_mat[:, k] = eq_cache[okey]
                    eq_cols[i] = eq_cache[okey]
                else:
                    lat_mat[:, k] = float(params.local_mem)
                    eq_mat[:, k] = True  # private data is always home-local
            hits = int(np.count_nonzero(hit_mat))
            misses = Tt * ncr - hits
            lf = int(np.count_nonzero(~hit_mat & eq_mat))
            rf = misses - lf
            lat_mat[hit_mat] = ch
            ev[:, cidx] = lat_mat
        for kind, idx_list in (("u", plan.uncached_idx),
                               ("w", plan.write_idx)):
            for i in idx_list:
                slot = plan.slots[i]
                if kind == "w" and not slot.shared:
                    ev[:, i] = float(params.write_local)
                    continue
                okey = (id(slot.owner_table), id(flats[i]))
                own = own_cache.get(okey)
                if own is None:
                    own = slot.owner_table[flats[i]]
                    own_cache[okey] = own
                    eq_cache[okey] = own == pe
                table = self._lat_table(pe, kind, slot.extra)
                lkey = (id(table), id(own))
                lcol = latcol_cache.get(lkey)
                if lcol is None:
                    lcol = table[own]
                    latcol_cache[lkey] = lcol
                ev[:, i] = lcol
                eq_cols[i] = eq_cache[okey]
                if kind == "u":
                    if slot.bypass:
                        byp += Tt
                    else:
                        nlocal = int(np.count_nonzero(eq_cache[okey]))
                        ulr += nlocal
                        urr += Tt - nlocal
                else:
                    rw += Tt - int(np.count_nonzero(eq_cache[okey]))
        total = const_total + float(ev.sum())
        kw = dict(
            reads=Tt * n_reads, writes=Tt * n_writes, cache_hits=hits,
            cache_misses=misses, local_fills=lf, remote_fills=rf,
            bypass_reads=byp, uncached_local_reads=ulr,
            uncached_remote_reads=urr, remote_writes=rw, busy_cycles=total)
        pe_obj.stats.add_bulk(**kw)
        self.batch_refs += Tt * (n_reads + n_writes)
        tr = self.machine.tracer
        if tr is not None:
            if tr.counts_only(plan.event_kinds):
                tr.add_counts("read_hit", hits)
                tr.add_counts("read_miss", misses)
                tr.add_counts("bypass_fetch", byp + ulr + urr)
                tr.add_counts("write", Tt * n_writes)
            else:
                self._synth_timing_events(plan, pe, Tt, flats, hit_cols,
                                          eq_cols, tr)
        if transfers:
            clock_final, stalls = self._stall_clock(
                plan, pe_obj, Tt, ev, hit_cols, line_cols, row_extra, total)
            for s in stalls:  # ordered scalar adds, exactly as wait_until
                pe_obj.stats.idle_cycles += s
                pe_obj.stats.vector_stall_cycles += s
            pe_obj.clock = clock_final
        else:
            clock_final = stalls = None
            pe_obj.clock += total
        if rec is not None:
            rec["stats"] = kw
            rec["refs"] = Tt * (n_reads + n_writes)
            rec["counts"] = (hits, misses, byp + ulr + urr, Tt * n_writes)
            rec["clock_abs"] = clock_final
            rec["stalls"] = tuple(stalls) if stalls is not None else ()
            rec["total"] = total

        # -- cache commit -------------------------------------------------
        cache = pe_obj.cache
        if cls is not None and len(cls.changed_sets):
            cache.tags[cls.changed_sets] = cls.changed_lines
            if rec is not None:
                rec["tags_sets"] = cls.changed_sets
                rec["tags_lines"] = cls.changed_lines
        elif rec is not None:
            rec["tags_sets"] = rec["tags_lines"] = None
        shared_lines: List[np.ndarray] = []
        seen_lines: Set[int] = set()
        priv_fills: List[tuple] = []
        for i in cidx + plan.write_idx:
            slot = plan.slots[i]
            if not slot.cacheable:
                continue
            lines = line_cols[i]
            if lines is None:
                lkey = (slot.base, id(flats[i]))
                lines = line_cache.get(lkey)
                if lines is None:
                    lines = (slot.base + flats[i]) // lw
                    line_cache[lkey] = lines
            if slot.shared:
                if id(lines) not in seen_lines:
                    seen_lines.add(id(lines))
                    shared_lines.append(lines)
            else:
                self._fill_private_lines(cache, lines, slot.base, slot.array,
                                         pe)
                if rec is not None:
                    priv_fills.append((lines, slot.base, slot.array))
        if rec is not None:
            rec["priv_fills"] = priv_fills
            rec["shared_fill"] = None
        if shared_lines:
            cat = np.concatenate(shared_lines)
            lines = np.flatnonzero(np.bincount(cat))  # sorted unique
            bulk_fill_lines(cache, lines, memory.values_flat,
                            memory.versions_flat)
            if rec is not None:
                rec["shared_fill"] = lines

    def _synth_timing_events(self, plan: _Plan, pe: int, Tt: int,
                             flats: List[np.ndarray], hit_cols, eq_cols,
                             tr) -> None:
        """Emit a fast-path chunk's machine events, row-major (iteration,
        slot) — the order the reference interpreter would have emitted
        them.  Fast-path plans have no prefetch slots and no queue
        interaction, so every event is static (read hit/miss from the
        classification, bypass fetch, write)."""
        emit = tr.emit
        cols = []
        for i, slot in enumerate(plan.slots):
            flat_l = flats[i].tolist()
            role = slot.role
            eq = eq_cols[i]
            eq_l = eq.tolist() if eq is not None else None
            if role == "cr":
                cols.append(("cr", slot.array, flat_l, hit_cols[i].tolist(),
                             eq_l))
            elif role == "ur":
                cols.append(("urb" if slot.bypass else "ur", slot.array,
                             flat_l, None, eq_l))
            elif slot.shared:  # shared write
                cols.append(("ws", slot.array, flat_l, None, eq_l))
            else:
                cols.append(("wp", slot.array, flat_l, None, None))
        for t in range(Tt):
            for code, array, flat_l, hit_l, eq_l in cols:
                flat = flat_l[t]
                if code == "cr":
                    if hit_l[t]:
                        emit(("read_hit", pe, array, flat, 0))
                    else:
                        emit(("read_miss", pe, array, flat,
                              1 if eq_l is None else int(eq_l[t])))
                elif code == "urb":
                    emit(("bypass_fetch", pe, array, flat, "bypass"))
                elif code == "ur":
                    emit(("bypass_fetch", pe, array, flat,
                          "uncached_local" if eq_l[t] else "uncached_remote"))
                elif code == "ws":
                    emit(("write", pe, array, flat, 1, 0 if eq_l[t] else 1))
                else:  # private write
                    emit(("write", pe, array, flat, 0, 0))

    def _stall_clock(self, plan: _Plan, pe_obj, Tt: int,
                     ev: np.ndarray, hit_cols, line_cols, row_extra,
                     total: float):
        """Final PE clock with vector-transfer stalls resolved.

        Replays the reference rule on the flat event stream: a cached-read
        HIT whose line is covered by the earliest-completion matching
        transfer stalls to that completion (``wait_until``) when the
        pre-event clock is still short of it.  Integer event costs make
        every partial sum exact, so composing segments between stalls
        reproduces the reference's sequential float adds bit-for-bit.

        Covers are computed per cached column — a column whose line range
        misses every live transfer costs two scalar reductions, and when no
        column is covered at all the chunk's clock is ``clock0 + total``
        exactly (integral costs make both groupings the same float)."""
        n_slots = plan.n_events
        clock0 = pe_obj.clock
        # match() returns the earliest-completion covering transfer (list
        # order breaks ties), completed ones included — those shadow any
        # still-in-flight transfer on the lines they cover.
        all_transfers = list(pe_obj.vectors.transfers)
        mm_cache: dict = {}

        def line_span(lines):
            span = mm_cache.get(id(lines))
            if span is None:
                span = (int(lines.min()), int(lines.max()))
                mm_cache[id(lines)] = span
            return span

        masks = []
        for ti, t in enumerate(all_transfers):
            if t.completion <= clock0:
                continue
            parts = []
            for i in plan.cached_idx:
                lines = line_cols[i]
                lmin, lmax = line_span(lines)
                if lmax < t.line_lo or lmin > t.line_hi:
                    continue
                cover = (lines >= t.line_lo) & (lines <= t.line_hi) \
                    & hit_cols[i]
                for oi, o in enumerate(all_transfers):
                    if o is t:
                        continue
                    if (o.completion < t.completion
                            or (o.completion == t.completion and oi < ti)):
                        if lmax < o.line_lo or lmin > o.line_hi:
                            continue
                        cover &= ~((lines >= o.line_lo)
                                   & (lines <= o.line_hi))
                rows = np.flatnonzero(cover)
                if rows.size:
                    parts.append(rows * n_slots + i)
            if parts:
                cov_idx = parts[0] if len(parts) == 1 else np.sort(
                    np.concatenate(parts))
                masks.append([t, cov_idx, None])
        if not masks:
            return clock0 + total, []
        pre = np.empty((Tt, n_slots), dtype=np.float64)
        pre[:] = plan.const_before
        tail = plan.tail_const
        if Tt > 1:
            pre[1:, 0] += tail
        if row_extra is not None:
            extra_rows, tail_extra = row_extra
            pre[:, 0] += extra_rows
            tail = tail + tail_extra
        ev_f = ev.ravel()
        C = np.cumsum(pre.ravel() + ev_f)
        D = C - ev_f  # clock offset just before each event's own cost
        for item in masks:
            item[2] = D[item[1]]
        base = clock0
        base_D = 0.0
        base_idx = -1
        stalls: List[float] = []
        remaining = list(masks)
        while remaining:
            best_e = None
            best = None
            for item in remaining:
                t, cov_idx, cov_D = item
                cand = cov_idx[(base + (cov_D - base_D) < t.completion)
                               & (cov_idx > base_idx)]
                if cand.size and (best_e is None or cand[0] < best_e):
                    best_e = int(cand[0])
                    best = item
            if best_e is None:
                break
            t = best[0]
            prec = base + (D[best_e] - base_D)
            stalls.append(t.completion - prec)
            base = t.completion
            base_D = float(D[best_e])
            base_idx = best_e
            remaining.remove(best)
        if base_idx < 0:
            clock_final = clock0 + float(C[-1]) + tail
        else:
            clock_final = base + float(C[-1] - base_D) + tail
        return clock_final, stalls

    def _fill_private_lines(self, cache, lines: np.ndarray, base: int,
                            array: str, pe: int) -> None:
        """Refill still-resident private lines from the PE's private row,
        zero-padding words outside the array (mirrors ``_line_contents``)."""
        memory = self.machine.memory
        size = memory.decls[array].size
        row = memory.private_values[array][pe]
        lw = cache.line_words
        nl = cache.n_lines
        for line in np.unique(lines).tolist():
            ix = line % nl
            if cache.tags[ix] != line:
                continue
            start = line * lw - base
            lo = max(start, 0)
            hi = min(start + lw, size)
            words = np.zeros(lw, dtype=np.float64)
            if lo < hi:
                words[lo - start:lo - start + hi - lo] = row[lo:hi]
            cache.data[ix, :] = words
            cache.vers[ix, :] = 0

    def _lat_table(self, pe: int, kind: str, extra: float) -> np.ndarray:
        key = (pe, kind, extra)
        table = self._lat.get(key)
        if table is None:
            if kind == "r":
                raw = read_latency_table(self.params, self.machine.torus, pe,
                                         extra)
            elif kind == "w":
                raw = write_latency_table(self.params, self.machine.torus, pe,
                                          extra)
            else:
                raw = uncached_read_latency_table(self.params,
                                                  self.machine.torus, pe,
                                                  extra)
            table = np.asarray(raw, dtype=np.float64)
            self._lat[key] = table
        return table


__all__ = ["BatchedInterpreter", "MIN_BATCH_EVENTS"]
