"""Per-(program, version, machine-params) compiled-plan cache.

The batched backend pays a real compilation cost per interpreter: every
innermost loop is planned into slot/latency/address-stream form, NumPy
latency tables are built, and the reference closures are compiled twice
(sequential + vectorised value planes).  All of that is a pure function
of ``(program, machine parameters, execution config)`` — so this module
keeps the whole *interpreter* warm across runs, keyed through
:mod:`repro.harness.progcache` content keys, and bit-exactly resets its
machine state before each reuse.  Chunk planning and address-stream
compilation are thereby paid once per process and shared across sweep
cells, benchmark rounds and repeated CLI runs.

Exactness contract: a warm run must be indistinguishable from a cold
run — values, versions, cache contents, stats, clocks, queue state and
epoch records all start from the exact post-construction state.  The
reset below therefore zeroes *in place* (compiled closures capture
views into ``values_flat``; rebinding the arrays would detach them) and
replaces every accumulator the interpreter or machine mutates.

Runs that attach per-event machinery the cached interpreter cannot
rebind — fault plans, the coherence oracle, read tracing — bypass the
cache entirely and run cold.  A machine-event tracer *is* rebindable
(every hot-path emission reads ``machine.tracer`` dynamically), so
traced and untraced runs share one warm interpreter.

Hit/miss counters live in :data:`repro.harness.progcache.COUNTERS`
(``plan_hits`` / ``plan_misses``) so sweep output can report cache
effectiveness alongside the program/transform caches.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..machine.stats import PEStats

#: Field -> zero value for every PEStats counter, for in-place resets
#: (cheaper than 64 fresh dataclass constructions per warm run).
_FRESH_PE_STATS = dict(PEStats().__dict__)

#: key -> (program ref, interpreter).  The program reference pins the
#: object so its ``id()`` (part of the key) can never be reused.
_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_CAPACITY = 256


def eligible(config) -> bool:
    """True when runs under ``config`` may reuse a warm interpreter."""
    return (config.backend == "batched" and config.fault_plan is None
            and not config.oracle)


def _key(program, params, config, trace_epochs: bool) -> tuple:
    from ..harness.progcache import content_key
    return (id(program),
            content_key("plan", params,
                        [config.version, config.on_stale, config.backend,
                         bool(config.cache_shared),
                         bool(config.craft_overheads),
                         bool(getattr(config, "plane_epochs", True))],
                        bool(trace_epochs)))


def _counters() -> dict:
    from ..harness.progcache import COUNTERS
    return COUNTERS


def fetch(program, params, config, trace_epochs: bool = False):
    """A reset, ready-to-run warm interpreter, or ``None`` on miss."""
    key = _key(program, params, config, trace_epochs)
    hit = _CACHE.get(key)
    counters = _counters()
    if hit is None:
        counters["plan_misses"] = counters.get("plan_misses", 0) + 1
        return None
    counters["plan_hits"] = counters.get("plan_hits", 0) + 1
    _CACHE.move_to_end(key)
    _, interp = hit
    _reset(interp, config)
    return interp


def store(program, params, config, trace_epochs, interp) -> None:
    """Admit a freshly built interpreter for future warm reuse."""
    _CACHE[_key(program, params, config, trace_epochs)] = (program, interp)
    while len(_CACHE) > _CAPACITY:
        _CACHE.popitem(last=False)


def clear() -> None:
    _CACHE.clear()


def size() -> int:
    return len(_CACHE)


def _reset(interp, config) -> None:
    """Restore the exact post-construction machine/interpreter state."""
    machine = interp.machine
    memory = machine.memory
    memory.values_flat[:] = 0.0
    memory.versions_flat[:] = 0
    for arr in memory.private_values.values():
        arr[:] = 0.0
    # One fill per stacked plane clears every PE's cache at once; the
    # per-PE cache arrays are row views of these planes (Machine builds
    # them that way and DirectMappedCache mutates in place).
    machine.cache_tags.fill(-1)
    machine.cache_data.fill(0.0)
    machine.cache_vers.fill(0)
    machine.clocks.fill(0.0)
    for pe in machine.pes:
        queue = pe.queue
        queue.entries = []
        queue.dropped = 0
        queue.issued = 0
        queue.high_water = 0
        vectors = pe.vectors
        vectors.transfers = []
        vectors.issued = 0
        vectors.words_moved = 0
        pe.last_prefetch_pe = None
        pe.dropped_lines = set()
        # Zero the counters in place: machine.stats.per_pe aliases these
        # objects, so no rebinding is needed anywhere.
        pe.stats.__dict__.update(_FRESH_PE_STATS)
    if machine.protocol is not None:
        machine.protocol.reset()
    st = machine.stats
    st.stale_reads = 0
    st.stale_examples = []
    st.barriers = 0
    st.epochs = 0
    machine._epoch_writers = {}
    machine.races = 0
    machine.race_examples = []
    # The tracer is the one config field allowed to differ between the
    # cached and requesting configs; every emission site reads it
    # dynamically, so rebinding here retargets the whole run.
    machine.tracer = config.tracer
    interp.config = config
    interp.epochs = []
    interp._synced = True
    for ctx in interp._loop_ctx.values():
        ctx.values.clear()
    for ctx in interp._reg_stack:
        ctx.values.clear()
    interp.batch_chunks = 0
    interp.batch_fallbacks = 0
    interp.fault_fallbacks = 0
    interp.batch_refs = 0
    interp.fallback_reasons = {}
    if hasattr(interp, "plane_chunks"):
        interp.plane_chunks = 0
        interp.plane_refs = 0
        # The reset restores the canonical start state, so the next run
        # may follow (or build) the positional plane-epoch chain.
        interp._plane_fresh = True


__all__ = ["eligible", "fetch", "store", "clear", "size"]
