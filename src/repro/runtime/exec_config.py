"""Execution configurations: the program *versions* of the paper's
methodology.

* ``SEQ``   — sequential baseline: one PE, everything local and cached,
  no epoch machinery.  Table 1 speedups divide by this time.
* ``BASE``  — the paper's BASE codes: CRAFT-style software shared
  memory.  Shared data is **not cached** (that is how CRAFT avoids the
  coherence problem), every shared access pays an address-translation
  overhead, and every parallel epoch pays the ``doshared`` setup cost.
* ``CCDP``  — the optimised codes: shared data is cached, direct local
  addressing (no CRAFT overheads), and the program has been transformed
  by :func:`repro.coherence.ccdp_transform` to stay coherent.
* ``NAIVE`` — shared data cached *without* the CCDP transformation.
  Incoherent on purpose: tests use it to demonstrate that the machine
  model really does produce stale reads and wrong numbers.
"""

from __future__ import annotations

from dataclasses import dataclass


class Version:
    SEQ = "seq"
    BASE = "base"
    CCDP = "ccdp"
    NAIVE = "naive"

    ALL = (SEQ, BASE, CCDP, NAIVE)


class Backend:
    REFERENCE = "reference"  #: one Python closure call per memory reference
    BATCHED = "batched"      #: bulk NumPy traces for affine loop bodies

    ALL = (REFERENCE, BATCHED)


@dataclass(frozen=True)
class ExecutionConfig:
    """Runtime policy knobs derived from the program version."""

    version: str = Version.CCDP
    cache_shared: bool = True
    craft_overheads: bool = False
    on_stale: str = "record"   #: "record" or "raise"
    backend: str = Backend.REFERENCE  #: "reference" or "batched"

    def __post_init__(self) -> None:
        if self.version not in Version.ALL:
            raise ValueError(f"unknown version {self.version!r}")
        if self.backend not in Backend.ALL:
            raise ValueError(f"unknown backend {self.backend!r}")

    @staticmethod
    def for_version(version: str, on_stale: str = "record",
                    backend: str = Backend.REFERENCE) -> "ExecutionConfig":
        if version == Version.SEQ:
            return ExecutionConfig(version, cache_shared=True,
                                   craft_overheads=False, on_stale=on_stale,
                                   backend=backend)
        if version == Version.BASE:
            return ExecutionConfig(version, cache_shared=False,
                                   craft_overheads=True, on_stale=on_stale,
                                   backend=backend)
        if version == Version.CCDP:
            return ExecutionConfig(version, cache_shared=True,
                                   craft_overheads=False, on_stale=on_stale,
                                   backend=backend)
        if version == Version.NAIVE:
            return ExecutionConfig(version, cache_shared=True,
                                   craft_overheads=False, on_stale=on_stale,
                                   backend=backend)
        raise ValueError(f"unknown version {version!r}")


__all__ = ["Version", "Backend", "ExecutionConfig"]
