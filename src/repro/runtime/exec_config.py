"""Execution configurations: the program *versions* of the paper's
methodology.

* ``SEQ``   — sequential baseline: one PE, everything local and cached,
  no epoch machinery.  Table 1 speedups divide by this time.
* ``BASE``  — the paper's BASE codes: CRAFT-style software shared
  memory.  Shared data is **not cached** (that is how CRAFT avoids the
  coherence problem), every shared access pays an address-translation
  overhead, and every parallel epoch pays the ``doshared`` setup cost.
* ``CCDP``  — the optimised codes: shared data is cached, direct local
  addressing (no CRAFT overheads), and the program has been transformed
  by :func:`repro.coherence.ccdp_transform` to stay coherent.
* ``NAIVE`` — shared data cached *without* the CCDP transformation.
  Incoherent on purpose: tests use it to demonstrate that the machine
  model really does produce stale reads and wrong numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..faults.models import FaultPlan


class Version:
    SEQ = "seq"
    BASE = "base"
    CCDP = "ccdp"
    NAIVE = "naive"

    ALL = (SEQ, BASE, CCDP, NAIVE)


class Backend:
    REFERENCE = "reference"  #: one Python closure call per memory reference
    BATCHED = "batched"      #: bulk NumPy traces for affine loop bodies

    ALL = (REFERENCE, BATCHED)


@dataclass(frozen=True)
class ExecutionConfig:
    """Runtime policy knobs derived from the program version."""

    version: str = Version.CCDP
    cache_shared: bool = True
    craft_overheads: bool = False
    on_stale: str = "record"   #: "record" or "raise"
    backend: str = Backend.REFERENCE  #: "reference" or "batched"
    fault_plan: Optional[FaultPlan] = None  #: seeded fault injection, or None
    oracle: bool = False       #: arm the shadow coherence oracle
    tracer: Optional[object] = None  #: repro.obs.Tracer (machine events)
    plane_epochs: bool = True  #: batched backend: cross-PE epoch plane

    def __post_init__(self) -> None:
        if self.version not in Version.ALL:
            raise ValueError(
                f"unknown version {self.version!r}; "
                f"expected one of {', '.join(Version.ALL)}")
        if self.backend not in Backend.ALL:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {', '.join(Backend.ALL)}")
        if self.on_stale not in ("record", "raise"):
            raise ValueError(
                f"unknown on_stale policy {self.on_stale!r}; "
                f"expected 'record' or 'raise'")
        if self.fault_plan is not None and not isinstance(self.fault_plan,
                                                          FaultPlan):
            raise ValueError(
                f"fault_plan must be a FaultPlan or None, got "
                f"{type(self.fault_plan).__name__} (build one with "
                f"repro.faults.parse_fault_plan or FaultPlan(models=...))")
        if self.tracer is not None and not callable(
                getattr(self.tracer, "emit", None)):
            raise ValueError(
                f"tracer must expose an emit(event) method, got "
                f"{type(self.tracer).__name__} (build one with "
                f"repro.obs.Tracer)")

    @staticmethod
    def for_version(version: str, on_stale: str = "record",
                    backend: str = Backend.REFERENCE,
                    fault_plan: Optional[FaultPlan] = None,
                    oracle: bool = False,
                    tracer: Optional[object] = None,
                    plane_epochs: bool = True) -> "ExecutionConfig":
        if version not in Version.ALL:
            raise ValueError(
                f"unknown version {version!r}; "
                f"expected one of {', '.join(Version.ALL)}")
        # BASE (CRAFT software shared memory) is the only version that
        # neither caches shared data nor skips translation overheads.
        base = version == Version.BASE
        return ExecutionConfig(version, cache_shared=not base,
                               craft_overheads=base, on_stale=on_stale,
                               backend=backend, fault_plan=fault_plan,
                               oracle=oracle, tracer=tracer,
                               plane_epochs=plane_epochs)


__all__ = ["Version", "Backend", "ExecutionConfig"]
