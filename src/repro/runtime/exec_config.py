"""Execution configurations: the program *versions* of the paper's
methodology, plus the hardware-coherent baselines from related work.

Every version is declared once, as a :class:`SchemeSpec` in the
:data:`SCHEMES` registry; ``Version.ALL``, CLI choices, validation
error messages and per-version policy (cache shared data?  CRAFT
overheads?  hardware protocol?) are all derived from it, so adding a
scheme is a one-line registry entry.

* ``SEQ``    — sequential baseline: one PE, everything local and cached,
  no epoch machinery.  Table 1 speedups divide by this time.
* ``BASE``   — the paper's BASE codes: CRAFT-style software shared
  memory.  Shared data is **not cached** (that is how CRAFT avoids the
  coherence problem), every shared access pays an address-translation
  overhead, and every parallel epoch pays the ``doshared`` setup cost.
* ``CCDP``   — the optimised codes: shared data is cached, direct local
  addressing (no CRAFT overheads), and the program has been transformed
  by :func:`repro.coherence.ccdp_transform` to stay coherent.
* ``NAIVE``  — shared data cached *without* the CCDP transformation.
  Incoherent on purpose: tests use it to demonstrate that the machine
  model really does produce stale reads and wrong numbers.
* ``MESI``   — shared data cached under a snooping MESI bus protocol
  (:mod:`repro.machine.protocols.mesi`): writes invalidate remote
  copies, so the untransformed program stays coherent in hardware.
* ``DIR``    — full-map home-node directory protocol
  (:mod:`repro.machine.protocols.directory`).
* ``DIR_LP`` — the same directory with limited pointers (overflow
  falls back to broadcast invalidation).
* ``DIR_PP`` — directory with epoch-driven phase-priority request
  ordering (Li & An): requests of the current phase bypass home-node
  occupancy waits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..faults.models import FaultPlan


@dataclass(frozen=True)
class SchemeSpec:
    """One coherence/execution scheme, declared exactly once."""

    name: str
    description: str
    cache_shared: bool = True    #: may shared data live in the D-cache?
    craft_overheads: bool = False  #: CRAFT software-shared-memory costs
    protocol: Optional[str] = None  #: hardware protocol kind, or None
    transformed: bool = False    #: run the CCDP-transformed program
    fuzz: bool = True            #: include in the differential fuzz matrix


#: Name -> spec.  Declaration order is presentation order everywhere
#: (CLI choices, tables, fuzz matrix).
SCHEMES: Dict[str, SchemeSpec] = {
    spec.name: spec for spec in (
        SchemeSpec("seq", "sequential baseline (1 PE)"),
        SchemeSpec("base", "CRAFT software shared memory, shared uncached",
                   cache_shared=False, craft_overheads=True),
        SchemeSpec("ccdp", "compiler-directed coherence via prefetching",
                   transformed=True),
        SchemeSpec("naive", "shared cached, no coherence (stale on purpose)"),
        SchemeSpec("mesi", "snooping MESI bus protocol", protocol="mesi"),
        SchemeSpec("dir", "full-map home-node directory protocol",
                   protocol="dir"),
        SchemeSpec("dir-lp", "limited-pointer directory (broadcast overflow)",
                   protocol="dir-lp", fuzz=False),
        SchemeSpec("dir-pp", "phase-priority directory (Li & An ordering)",
                   protocol="dir-pp", fuzz=False),
    )
}


def scheme_names() -> str:
    """Comma-separated registry names, for error messages."""
    return ", ".join(SCHEMES)


class Version:
    SEQ = "seq"
    BASE = "base"
    CCDP = "ccdp"
    NAIVE = "naive"
    MESI = "mesi"
    DIR = "dir"
    DIR_LP = "dir-lp"
    DIR_PP = "dir-pp"

    ALL = tuple(SCHEMES)
    #: Versions whose final values must match SEQ bit-exactly with zero
    #: stale reads (everything but the intentionally incoherent NAIVE).
    COHERENT = tuple(name for name in SCHEMES if name != "naive")
    #: Versions driven by a hardware coherence protocol.
    PROTOCOL = tuple(name for name, spec in SCHEMES.items() if spec.protocol)


class Backend:
    REFERENCE = "reference"  #: one Python closure call per memory reference
    BATCHED = "batched"      #: bulk NumPy traces for affine loop bodies

    ALL = (REFERENCE, BATCHED)


@dataclass(frozen=True)
class ExecutionConfig:
    """Runtime policy knobs derived from the program version."""

    version: str = Version.CCDP
    cache_shared: bool = True
    craft_overheads: bool = False
    on_stale: str = "record"   #: "record" or "raise"
    backend: str = Backend.REFERENCE  #: "reference" or "batched"
    fault_plan: Optional[FaultPlan] = None  #: seeded fault injection, or None
    oracle: bool = False       #: arm the shadow coherence oracle
    tracer: Optional[object] = None  #: repro.obs.Tracer (machine events)
    plane_epochs: bool = True  #: batched backend: cross-PE epoch plane
    protocol: Optional[str] = None  #: hardware coherence protocol, or None

    def __post_init__(self) -> None:
        spec = SCHEMES.get(self.version)
        if spec is None:
            raise ValueError(
                f"unknown version {self.version!r}; "
                f"expected one of {scheme_names()}")
        if self.protocol is None and spec.protocol is not None:
            # The protocol is a property of the scheme, not a free knob:
            # fill it from the registry so direct ExecutionConfig(...)
            # construction agrees with for_version().
            object.__setattr__(self, "protocol", spec.protocol)
        if self.backend not in Backend.ALL:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {', '.join(Backend.ALL)}")
        if self.on_stale not in ("record", "raise"):
            raise ValueError(
                f"unknown on_stale policy {self.on_stale!r}; "
                f"expected 'record' or 'raise'")
        if self.fault_plan is not None and not isinstance(self.fault_plan,
                                                          FaultPlan):
            raise ValueError(
                f"fault_plan must be a FaultPlan or None, got "
                f"{type(self.fault_plan).__name__} (build one with "
                f"repro.faults.parse_fault_plan or FaultPlan(models=...))")
        if self.tracer is not None and not callable(
                getattr(self.tracer, "emit", None)):
            raise ValueError(
                f"tracer must expose an emit(event) method, got "
                f"{type(self.tracer).__name__} (build one with "
                f"repro.obs.Tracer)")

    @staticmethod
    def for_version(version: str, on_stale: str = "record",
                    backend: str = Backend.REFERENCE,
                    fault_plan: Optional[FaultPlan] = None,
                    oracle: bool = False,
                    tracer: Optional[object] = None,
                    plane_epochs: bool = True) -> "ExecutionConfig":
        spec = SCHEMES.get(version)
        if spec is None:
            raise ValueError(
                f"unknown version {version!r}; "
                f"expected one of {scheme_names()}")
        return ExecutionConfig(version, cache_shared=spec.cache_shared,
                               craft_overheads=spec.craft_overheads,
                               on_stale=on_stale,
                               backend=backend, fault_plan=fault_plan,
                               oracle=oracle, tracer=tracer,
                               plane_epochs=plane_epochs,
                               protocol=spec.protocol)


__all__ = ["SchemeSpec", "SCHEMES", "scheme_names", "Version", "Backend",
           "ExecutionConfig"]
