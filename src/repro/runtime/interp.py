"""The reference interpreter: executes IR programs on the machine model.

Every memory reference is serviced individually through
:class:`~repro.machine.machine.Machine`, so timing, cache behaviour,
prefetch-queue dynamics and coherence are *exact* with respect to the
machine semantics.  To keep the hot path fast, expressions and
statements are compiled once into Python closures (``fn(env, pe) ->
value``); per-reference policy flags (cacheable / bypass / CRAFT
overhead) are resolved at compile time.

The interpreter realises the paper's epoch execution model:

* top-level DOALL loops are parallel epochs — iterations partitioned
  over PEs by the loop's schedule, ended by a barrier;
* serial code (including serial loops without inner DOALLs) runs as a
  single task on PE 0;
* serial loops *containing* DOALLs ("region loops", e.g. time-step
  loops) execute their bodies as epoch sequences per iteration;
* main memory is always current (write-through), so the epoch-boundary
  memory update is implicit.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.affine import affine_ref
from ..analysis.costmodel import expr_cost
from ..ir.expr import (ArrayRef, BinOp, Expr, FloatConst, IntConst,
                       IntrinsicCall, RefMode, SymConst, UnaryOp, VarRef)
from ..ir.program import Program
from ..ir.stmt import (Assign, CallStmt, If, InvalidateLines, Loop, LoopKind,
                       PrefetchLine, PrefetchVector, ScheduleKind, Stmt)
from ..machine.machine import Machine
from ..machine.params import MachineParams
from .exec_config import ExecutionConfig, Version
from . import plancache
from .schedulers import (block_partition, cyclic_partition, dynamic_chunks,
                         owner_partition)

EvalFn = Callable[[dict, int], float]
StmtFn = Callable[[dict, int], None]


@dataclass
class EpochRecord:
    """One executed epoch, for traces and reports."""

    label: str
    kind: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class RunResult:
    """Outcome of one program execution."""

    elapsed: float
    machine: Machine
    config: ExecutionConfig
    epochs: List[EpochRecord] = field(default_factory=list)
    batch_chunks: int = 0      #: chunks the batched backend bulk-executed
    batch_fallbacks: int = 0   #: chunks that bound but fell back at run time
    fault_fallbacks: int = 0   #: chunks routed to the reference path by faults
    batch_refs: int = 0        #: memory references served by batched chunks
    plane_chunks: int = 0      #: DOALL epochs replayed through the plane
    plane_refs: int = 0        #: memory references served by plane replays
    #: per-reason fallback/skip counts (reason code -> occurrences); empty
    #: under the reference backend or when no chunk ever fell back
    fallback_reasons: Dict[str, int] = field(default_factory=dict)

    @property
    def batched_coverage(self) -> float:
        """Fraction of all memory references serviced through batched
        plans (0.0 under the reference backend)."""
        total = self.machine.stats.total()
        denom = total.reads + total.writes
        return self.batch_refs / denom if denom else 0.0

    @property
    def plane_coverage(self) -> float:
        """Fraction of all memory references serviced by cross-PE plane
        epoch replays (0.0 on a cold interpreter or reference backend)."""
        total = self.machine.stats.total()
        denom = total.reads + total.writes
        return self.plane_refs / denom if denom else 0.0

    @property
    def stats(self):
        return self.machine.stats

    @property
    def fault_stats(self):
        """FaultStats of the run, or None when no plan was active."""
        return None if self.machine.faults is None else self.machine.faults.stats

    @property
    def oracle(self):
        return self.machine.oracle

    def value_of(self, array: str):
        return self.machine.memory.array_view(array)

    def summary(self) -> str:
        text = (f"[{self.config.version}] {self.elapsed:.0f} cycles, "
                f"{self.machine.stats.summary()}")
        if self.machine.faults is not None:
            text += f"\n  faults: {self.machine.faults.stats.summary()}"
        if self.machine.oracle is not None:
            text += f"\n  {self.machine.oracle.summary()}"
        return text


class InterpreterError(RuntimeError):
    pass


class _RegCache:
    """Iteration-scoped register promotion (compile-time scaffold).

    Real compilers keep a value loaded once per loop iteration in a
    register; without modelling that, every *textual* occurrence of
    ``p(i, j)`` would be charged as a separate load, inflating the cached
    versions' hit counts and the uncached versions' latency alike.  Each
    innermost loop body (serial inner loop or DOALL body) gets one of
    these: reads of affine references are memoised per iteration under
    their structural key, and writes evict exactly the keys they may
    alias (same array, unless the affine address forms provably differ
    by a non-zero constant)."""

    __slots__ = ("values", "reads", "drops")

    def __init__(self) -> None:
        self.values: dict = {}           # key -> runtime value (per iteration)
        self.reads: Dict[tuple, object] = {}   # key -> AffineRef or None
        self.drops: Dict[int, List[tuple]] = {}  # write stmt uid -> keys

    def register_read(self, key: tuple, aref) -> None:
        self.reads.setdefault(key, aref)

    def drop_keys_for_write(self, write_ref: ArrayRef, write_aref) -> List[tuple]:
        """Keys a write to ``write_ref`` may alias (computed once, at
        compile time, after the whole region was scanned)."""
        out = []
        for key, aref in self.reads.items():
            if key[1] != write_ref.array:  # key = ("aref", array, subs)
                continue
            if (write_aref is not None and aref is not None
                    and write_aref.address.same_shape(aref.address)
                    and write_aref.address.const != aref.address.const):
                continue  # provably distinct elements: keep the register
            out.append(key)
        return out


class Interpreter:
    """Compile-and-run engine for one (program, machine, config) triple."""

    def __init__(self, program: Program, params: MachineParams,
                 config: Optional[ExecutionConfig] = None,
                 trace_epochs: bool = False, trace_reads: bool = False) -> None:
        self.program = program
        self.params = params
        self.config = config or ExecutionConfig()
        self.machine = Machine(program.arrays.values(), params,
                               on_stale=self.config.on_stale,
                               trace=trace_reads,
                               fault_plan=self.config.fault_plan,
                               oracle=self.config.oracle,
                               tracer=self.config.tracer,
                               protocol=self.config.protocol)
        self.trace_epochs = trace_epochs
        self.epochs: List[EpochRecord] = []
        self._expr_cache: Dict[int, EvalFn] = {}
        self._stmt_cache: Dict[int, StmtFn] = {}
        self._synced = True
        self._multi = params.n_pes > 1
        # Register-promotion scaffolding (see _RegCache).
        self._reg_stack: List[_RegCache] = []
        self._loop_ctx: Dict[int, _RegCache] = {}
        self._loopvar_stack: List[str] = []
        self._region_vars: List[str] = []

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        env: Dict[str, float] = {}
        for name, decl in self.program.scalars.items():
            env[name] = decl.init if decl.init is not None else 0.0
        self._exec_region(self.program.entry_proc.body, env)
        if self._multi and not self._synced:
            self.machine.barrier()
        if self.machine.oracle is not None:
            self.machine.oracle.verify_final(self.machine.memory)
        return RunResult(elapsed=self.machine.elapsed(), machine=self.machine,
                         config=self.config, epochs=self.epochs,
                         batch_chunks=getattr(self, "batch_chunks", 0),
                         batch_fallbacks=getattr(self, "batch_fallbacks", 0),
                         fault_fallbacks=getattr(self, "fault_fallbacks", 0),
                         batch_refs=getattr(self, "batch_refs", 0),
                         plane_chunks=getattr(self, "plane_chunks", 0),
                         plane_refs=getattr(self, "plane_refs", 0),
                         fallback_reasons=dict(
                             getattr(self, "fallback_reasons", {})))

    # ------------------------------------------------------------------
    # epoch-level control
    # ------------------------------------------------------------------
    def _exec_region(self, body: List[Stmt], env: dict) -> None:
        for stmt in body:
            if isinstance(stmt, Loop) and stmt.kind == LoopKind.DOALL:
                self._exec_doall(stmt, env)
            elif isinstance(stmt, Loop) and self._has_parallelism(stmt):
                lo = int(self._compile_expr(stmt.lower)(env, 0))
                hi = int(self._compile_expr(stmt.upper)(env, 0))
                step = int(self._compile_expr(stmt.step)(env, 0))
                self._region_vars.append(stmt.var)
                for value in range(lo, hi + (1 if step > 0 else -1), step):
                    env[stmt.var] = value
                    self._exec_region(stmt.body, env)
                self._region_vars.pop()
            elif isinstance(stmt, If) and self._has_parallelism(stmt):
                cond = self._compile_expr(stmt.cond)(env, 0)
                self._synced = False
                self._exec_region(stmt.then_body if cond else stmt.else_body, env)
            elif isinstance(stmt, CallStmt) and _callee_contains_doall(self.program, stmt):
                callee = self.program.procedures[stmt.name]
                saved = {}
                for name, arg in zip(callee.params, stmt.args):
                    if name in env:
                        saved[name] = env[name]
                    env[name] = self._compile_expr(arg)(env, 0)
                self._exec_region(callee.body, env)
                for name in callee.params:
                    if name in saved:
                        env[name] = saved[name]
                    else:
                        env.pop(name, None)
            else:
                # Serial epoch work: one task on PE 0.
                self._compile_stmt(stmt)(env, 0)
                self._synced = False

    def _exec_doall(self, loop: Loop, env: dict) -> None:
        machine = self.machine
        params = self.params
        # elapsed() is an O(n_pes) max; only the epoch record needs it.
        start_time = machine.elapsed() if self.trace_epochs else 0.0
        if self._multi and not self._synced:
            machine.barrier()
        if self._multi:
            extra = params.epoch_start
            if self.config.craft_overheads:
                extra += params.craft_epoch_overhead
            # Vectorized pe.advance(extra): one add on the stacked
            # clock plane, then the busy counters (still per-PE ints).
            machine.clocks += extra
            for pe in machine.pes:
                pe.stats.busy_cycles += extra
        tracer = machine.tracer
        epoch_label = loop.label or f"doall {loop.var}"
        if tracer is not None:
            tracer.epoch_begin(epoch_label, machine)

        lo = int(self._compile_expr(loop.lower)(env, 0))
        hi = int(self._compile_expr(loop.upper)(env, 0))
        step = int(self._compile_expr(loop.step)(env, 0))
        ctx = self._enter_loop_ctx(loop)
        body_fns = [self._compile_stmt(s) for s in loop.body]
        preamble_fns = [self._compile_stmt(s) for s in loop.preamble]
        self._exit_loop_ctx()
        var = loop.var
        overhead = params.loop_overhead
        n_pes = params.n_pes
        registers = ctx.values

        def run_iteration(env_p: dict, pe: int, value: int) -> None:
            env_p[var] = value
            registers.clear()
            machine.pes[pe].advance(overhead)
            for fn in body_fns:
                fn(env_p, pe)

        def run_preamble(env_p: dict, pe: int, c_lo: int, c_hi: int, c_cnt: int) -> None:
            if not preamble_fns:
                return
            lo_name, hi_name, cnt_name = loop.chunk_vars()
            env_p[lo_name] = c_lo
            env_p[hi_name] = c_hi
            env_p[cnt_name] = c_cnt
            self._run_preamble(loop, preamble_fns, env_p, pe)

        self._run_doall_body(loop, env, lo, hi, step,
                             run_iteration, run_preamble)

        registers.clear()
        if self._multi:
            machine.barrier()
        self._synced = True
        machine.stats.epochs += 1
        if tracer is not None:
            tracer.epoch_end(epoch_label, machine)
        if self.trace_epochs:
            self.epochs.append(EpochRecord(
                label=epoch_label, kind="parallel",
                start=start_time, end=machine.elapsed()))

    def _run_doall_body(self, loop: Loop, env: dict, lo: int, hi: int,
                        step: int, run_iteration, run_preamble) -> None:
        """Partition one DOALL epoch over the PEs and execute every PE's
        chunk.  The batched backend overrides this to record/replay whole
        epochs through the cross-PE plane."""
        machine = self.machine
        params = self.params
        n_pes = params.n_pes
        if loop.align and loop.schedule == ScheduleKind.STATIC_BLOCK and n_pes > 1:
            decl = self.program.array(loop.align)
            assignments = owner_partition(
                lo, hi, step, n_pes,
                lambda v: decl.owner_of_axis_index(v, n_pes))
            for pe, values in enumerate(assignments):
                env_p = dict(env)
                if values:
                    run_preamble(env_p, pe, min(values), max(values), len(values))
                self._iterate_doall(loop, env_p, pe, values, run_iteration)
        elif loop.schedule == ScheduleKind.STATIC_BLOCK or n_pes == 1:
            chunks = block_partition(lo, hi, step, n_pes)
            for pe, chunk in enumerate(chunks):
                env_p = dict(env)
                run_preamble(env_p, pe, chunk.lo, chunk.hi, chunk.count)
                self._iterate_doall(loop, env_p, pe, list(chunk.iterations()),
                                    run_iteration)
        elif loop.schedule == ScheduleKind.STATIC_CYCLIC:
            assignments = cyclic_partition(lo, hi, step, n_pes)
            for pe, values in enumerate(assignments):
                env_p = dict(env)
                if values:
                    run_preamble(env_p, pe, values[0], values[-1], len(values))
                self._iterate_doall(loop, env_p, pe, values, run_iteration)
        else:  # DYNAMIC: greedy earliest-clock self scheduling
            chunks = dynamic_chunks(lo, hi, step, params.dynamic_chunk)
            envs = []
            for pe in range(n_pes):
                env_p = dict(env)
                run_preamble(env_p, pe, lo, hi, max(0, len(range(lo, hi + 1, step))))
                envs.append(env_p)
            # Ready queue keyed on (clock, pe): pops the idlest PE, lowest
            # index first on ties — the same PE the old O(P) min() scan
            # picked, in O(log P).  Entries go stale when a PE's clock moves
            # (it executed a chunk); stale pops are refreshed and reinserted.
            ready = [(machine.pes[p].clock, p) for p in range(n_pes)]
            heapq.heapify(ready)
            for chunk in chunks:
                while True:
                    clock, pe = heapq.heappop(ready)
                    if clock == machine.pes[pe].clock:
                        break
                    heapq.heappush(ready, (machine.pes[pe].clock, pe))
                machine.pes[pe].advance(params.dynamic_sched_overhead)
                self._iterate_doall(loop, envs[pe], pe,
                                    list(chunk.iterations()), run_iteration)
                heapq.heappush(ready, (machine.pes[pe].clock, pe))

    def _iterate_doall(self, loop: Loop, env_p: dict, pe: int,
                       values: Sequence[int], run_iteration) -> None:
        """Execute one PE's iteration chunk of a DOALL.  The batched
        backend overrides this to service whole chunks as bulk traces."""
        for value in values:
            run_iteration(env_p, pe, value)

    def _run_preamble(self, loop: Loop, preamble_fns, env_p: dict,
                      pe: int) -> None:
        """Execute one PE's DOALL preamble (chunk vars already bound in
        ``env_p``).  The batched backend overrides this to memoise pure
        prefetch/invalidate preambles."""
        for fn in preamble_fns:
            fn(env_p, pe)

    # ------------------------------------------------------------------
    # register-promotion contexts
    # ------------------------------------------------------------------
    def _enter_loop_ctx(self, loop: Loop) -> _RegCache:
        ctx = self._loop_ctx.get(loop.uid)
        if ctx is None:
            ctx = _RegCache()
            self._scan_direct_reads(loop.body, ctx)
            self._loop_ctx[loop.uid] = ctx
        self._reg_stack.append(ctx)
        self._loopvar_stack.append(loop.var)
        return ctx

    def _exit_loop_ctx(self) -> None:
        self._reg_stack.pop()
        self._loopvar_stack.pop()

    def _scan_direct_reads(self, stmts: Sequence[Stmt], ctx: _RegCache) -> None:
        """Register the loop-body-level reads eligible for register
        promotion (nested loops own their reads; callee bodies are
        opaque)."""
        for stmt in stmts:
            if isinstance(stmt, Loop):
                continue
            if isinstance(stmt, If):
                self._register_reads(stmt.cond, ctx)
                self._scan_direct_reads(stmt.then_body, ctx)
                self._scan_direct_reads(stmt.else_body, ctx)
            elif isinstance(stmt, Assign):
                self._register_reads(stmt.rhs, ctx)
                if isinstance(stmt.lhs, ArrayRef):
                    for sub in stmt.lhs.subscripts:
                        self._register_reads(sub, ctx)
            elif isinstance(stmt, CallStmt):
                for arg in stmt.args:
                    self._register_reads(arg, ctx)

    def _register_reads(self, expr: Expr, ctx: _RegCache) -> None:
        for node in expr.walk():
            if isinstance(node, ArrayRef):
                decl = self.program.array(node.array)
                ctx.register_read(node.key(), affine_ref(node, decl))

    def _promotable(self, ref: ArrayRef) -> bool:
        """A read may live in a register for the iteration only when its
        address cannot change mid-iteration: every subscript variable is
        a loop induction variable of some enclosing loop."""
        loop_vars = set(self._loopvar_stack) | set(self._region_vars)
        for sub in ref.subscripts:
            if not sub.free_vars() <= loop_vars:
                return False
        return True

    def _has_parallelism(self, stmt: Stmt) -> bool:
        """Does ``stmt`` contain a DOALL, lexically or behind calls?"""
        for node in stmt.walk():
            if isinstance(node, Loop) and node.kind == LoopKind.DOALL:
                return True
            if isinstance(node, CallStmt) and _callee_contains_doall(self.program, node):
                return True
        return False

    # ------------------------------------------------------------------
    # statement compilation
    # ------------------------------------------------------------------
    def _compile_stmt(self, stmt: Stmt) -> StmtFn:
        cached = self._stmt_cache.get(stmt.uid)
        if cached is not None:
            return cached
        fn = self._build_stmt(stmt)
        self._stmt_cache[stmt.uid] = fn
        return fn

    def _build_stmt(self, stmt: Stmt) -> StmtFn:
        machine = self.machine
        params = self.params

        if isinstance(stmt, Assign):
            rhs_fn = self._compile_expr(stmt.rhs)
            arith = self._arith_cost(stmt.rhs)
            if isinstance(stmt.lhs, VarRef):
                name = stmt.lhs.name

                def assign_scalar(env: dict, pe: int) -> None:
                    value = rhs_fn(env, pe)
                    if arith:
                        machine.pes[pe].advance(arith)
                    env[name] = value

                return assign_scalar

            lhs = stmt.lhs
            decl = self.program.array(lhs.array)
            flat_fn = self._compile_flat_index(lhs)
            craft = self.config.craft_overheads and decl.is_shared
            cacheable = self.config.cache_shared if decl.is_shared else True
            array = lhs.array

            # Register eviction: spill every promoted value this store may
            # alias, in every active loop context (computed at compile time
            # from the affine address forms).
            write_aref = affine_ref(lhs, decl)
            evictions = []
            for ctx in self._reg_stack:
                keys = ctx.drop_keys_for_write(lhs, write_aref)
                if keys:
                    evictions.append((ctx.values, keys))

            if evictions:
                def assign_array(env: dict, pe: int) -> None:
                    value = rhs_fn(env, pe)
                    if arith:
                        machine.pes[pe].advance(arith)
                    machine.write(pe, array, flat_fn(env, pe), value,
                                  cacheable=cacheable, craft=craft)
                    for registers, keys in evictions:
                        for key in keys:
                            registers.pop(key, None)
            else:
                def assign_array(env: dict, pe: int) -> None:
                    value = rhs_fn(env, pe)
                    if arith:
                        machine.pes[pe].advance(arith)
                    machine.write(pe, array, flat_fn(env, pe), value,
                                  cacheable=cacheable, craft=craft)

            return assign_array

        if isinstance(stmt, Loop):
            if stmt.kind == LoopKind.DOALL:
                raise InterpreterError(
                    "nested DOALL loops are not part of the epoch model")
            lo_fn = self._compile_expr(stmt.lower)
            hi_fn = self._compile_expr(stmt.upper)
            step_fn = self._compile_expr(stmt.step)
            ctx = self._enter_loop_ctx(stmt)
            body_fns = [self._compile_stmt(s) for s in stmt.body]
            self._exit_loop_ctx()
            var = stmt.var
            overhead = params.loop_overhead
            registers = ctx.values

            def run_loop(env: dict, pe: int) -> None:
                lo = int(lo_fn(env, pe))
                hi = int(hi_fn(env, pe))
                step = int(step_fn(env, pe))
                pe_obj = machine.pes[pe]
                for value in range(lo, hi + (1 if step > 0 else -1), step):
                    env[var] = value
                    registers.clear()
                    pe_obj.advance(overhead)
                    for fn in body_fns:
                        fn(env, pe)
                registers.clear()

            return run_loop

        if isinstance(stmt, If):
            cond_fn = self._compile_expr(stmt.cond)
            then_fns = [self._compile_stmt(s) for s in stmt.then_body]
            else_fns = [self._compile_stmt(s) for s in stmt.else_body]
            branch_cost = params.int_op

            def run_if(env: dict, pe: int) -> None:
                machine.pes[pe].advance(branch_cost)
                for fn in (then_fns if cond_fn(env, pe) else else_fns):
                    fn(env, pe)

            return run_if

        if isinstance(stmt, CallStmt):
            callee = self.program.procedures[stmt.name]
            arg_fns = [self._compile_expr(a) for a in stmt.args]
            # A call is a full register spill: the callee may write any
            # global array.  Its body compiles under a fresh context stack
            # so its closures never bind to this call site's registers.
            spill = [ctx.values for ctx in self._reg_stack]
            saved_stacks = (self._reg_stack, self._loopvar_stack)
            self._reg_stack, self._loopvar_stack = [], []
            body_fns = [self._compile_stmt(s) for s in callee.body]
            self._reg_stack, self._loopvar_stack = saved_stacks
            names = callee.params

            def run_call(env: dict, pe: int) -> None:
                for registers in spill:
                    registers.clear()
                saved = {}
                for name, arg_fn in zip(names, arg_fns):
                    if name in env:
                        saved[name] = env[name]
                    env[name] = arg_fn(env, pe)
                for fn in body_fns:
                    fn(env, pe)
                for registers in spill:
                    registers.clear()
                for name in names:
                    if name in saved:
                        env[name] = saved[name]
                    else:
                        env.pop(name, None)

            return run_call

        if isinstance(stmt, PrefetchLine):
            return self._build_prefetch_line(stmt)
        if isinstance(stmt, PrefetchVector):
            return self._build_prefetch_vector(stmt)
        if isinstance(stmt, InvalidateLines):
            return self._build_invalidate(stmt)
        raise InterpreterError(f"cannot execute {type(stmt).__name__}")

    def _build_prefetch_line(self, stmt: PrefetchLine) -> StmtFn:
        machine = self.machine
        params = self.params
        ref = stmt.ref
        decl = self.program.array(ref.array)
        sub_fns = [self._compile_expr(s) for s in ref.subscripts]
        shape = decl.shape
        strides = decl.strides()
        invalidate = stmt.invalidate_first
        array = ref.array
        if decl.is_shared and (not self.config.cache_shared
                               or self.config.protocol is not None):
            # BASE-style and protocol runs never execute CCDP programs,
            # but guard anyway: prefetching into a disabled cache — or
            # around a hardware protocol that owns the line states — is
            # a no-op costing issue time.
            def noop(env: dict, pe: int) -> None:
                machine.pes[pe].advance(params.prefetch_issue)

            return noop

        def run_prefetch(env: dict, pe: int) -> None:
            flat = 0
            for fn, extent, stride in zip(sub_fns, shape, strides):
                idx = int(fn(env, pe)) - 1
                if idx < 0 or idx >= extent:
                    # Beyond-edge look-ahead: hardware would fetch a harmless
                    # out-of-range address; charge the issue cost and drop.
                    machine.pes[pe].advance(params.prefetch_issue)
                    return
                flat += idx * stride
            machine.prefetch_line(pe, array, flat, invalidate=invalidate)

        return run_prefetch

    def _build_prefetch_vector(self, stmt: PrefetchVector) -> StmtFn:
        machine = self.machine
        params = self.params
        decl = self.program.array(stmt.array)
        sub_fns = [self._compile_expr(s) for s in stmt.start_subscripts]
        len_fn = self._compile_expr(stmt.length)
        stride_fn = self._compile_expr(stmt.stride)
        shape = decl.shape
        strides = decl.strides()
        axis = stmt.axis
        size = decl.size
        array = stmt.array
        invalidate = stmt.invalidate_first
        if decl.is_shared and (not self.config.cache_shared
                               or self.config.protocol is not None):
            def noop(env: dict, pe: int) -> None:
                machine.pes[pe].advance(params.vector_startup)

            return noop

        def run_vector(env: dict, pe: int) -> None:
            flat = 0
            for fn, extent, stride in zip(sub_fns, shape, strides):
                idx = int(fn(env, pe)) - 1
                idx = min(max(idx, 0), extent - 1)
                flat += idx * stride
            length = int(len_fn(env, pe))
            if length <= 0:
                return
            elem_stride = int(stride_fn(env, pe)) * strides[axis]
            if elem_stride > 0:
                max_len = (size - 1 - flat) // elem_stride + 1
                length = min(length, max_len)
            machine.prefetch_vector(pe, array, flat, length, elem_stride,
                                    invalidate=invalidate)

        return run_vector

    def _build_invalidate(self, stmt: InvalidateLines) -> StmtFn:
        machine = self.machine
        decl = self.program.array(stmt.array)
        sub_fns = [self._compile_expr(s) for s in stmt.start_subscripts]
        len_fn = self._compile_expr(stmt.length)
        shape = decl.shape
        strides = decl.strides()
        axis = stmt.axis
        size = decl.size
        array = stmt.array

        def run_invalidate(env: dict, pe: int) -> None:
            flat = 0
            for fn, extent, stride in zip(sub_fns, shape, strides):
                idx = int(fn(env, pe)) - 1
                idx = min(max(idx, 0), extent - 1)
                flat += idx * stride
            length = int(len_fn(env, pe))
            if length <= 0:
                return
            count = length * strides[axis]
            machine.invalidate(pe, array, flat, min(flat + count - 1, size - 1))

        return run_invalidate

    # ------------------------------------------------------------------
    # expression compilation
    # ------------------------------------------------------------------
    def _compile_expr(self, expr: Expr) -> EvalFn:
        cached = self._expr_cache.get(expr.uid)
        if cached is not None:
            return cached
        fn = self._build_expr(expr)
        self._expr_cache[expr.uid] = fn
        return fn

    def _build_expr(self, expr: Expr) -> EvalFn:
        if isinstance(expr, IntConst):
            value = expr.value
            return lambda env, pe: value
        if isinstance(expr, FloatConst):
            fvalue = expr.value
            return lambda env, pe: fvalue
        if isinstance(expr, SymConst):
            bound = self.program.sym_value(expr.name)
            return lambda env, pe: bound
        if isinstance(expr, VarRef):
            name = expr.name
            return lambda env, pe: env[name]
        if isinstance(expr, ArrayRef):
            return self._build_array_read(expr)
        if isinstance(expr, UnaryOp):
            inner = self._compile_expr(expr.operand)
            if expr.op == "-":
                return lambda env, pe: -inner(env, pe)
            if expr.op == "not":
                return lambda env, pe: not inner(env, pe)
            return inner
        if isinstance(expr, IntrinsicCall):
            return self._build_intrinsic(expr)
        if isinstance(expr, BinOp):
            return self._build_binop(expr)
        raise InterpreterError(f"cannot evaluate {type(expr).__name__}")

    def _build_array_read(self, ref: ArrayRef) -> EvalFn:
        machine = self.machine
        decl = self.program.array(ref.array)
        sub_fns = [self._compile_expr(s) for s in ref.subscripts]
        shape = decl.shape
        strides = decl.strides()
        array = ref.array
        shared = decl.is_shared
        bypass = shared and ref.mode == RefMode.BYPASS
        cacheable = (self.config.cache_shared if shared else True) and not bypass
        craft = self.config.craft_overheads and shared

        # Register promotion: a repeated read of the same element within
        # one iteration costs nothing (the compiler keeps it in a
        # register).  Only registered, address-stable reads qualify.
        if self._reg_stack and self._promotable(ref):
            key = ref.key()
            ctx = self._reg_stack[-1]
            if key in ctx.reads:
                registers = ctx.values
                inner = self._build_array_read_raw(ref, decl, sub_fns, cacheable,
                                                   bypass, craft)

                def read_promoted(env: dict, pe: int) -> float:
                    value = registers.get(key)
                    if value is None:
                        value = inner(env, pe)
                        registers[key] = value
                    return value

                return read_promoted
        return self._build_array_read_raw(ref, decl, sub_fns, cacheable,
                                          bypass, craft)

    def _build_array_read_raw(self, ref: ArrayRef, decl, sub_fns,
                              cacheable: bool, bypass: bool, craft: bool) -> EvalFn:
        machine = self.machine
        shape = decl.shape
        strides = decl.strides()
        array = ref.array

        if len(sub_fns) == 1:
            sub0 = sub_fns[0]
            extent0 = shape[0]

            def read1(env: dict, pe: int) -> float:
                idx = int(sub0(env, pe)) - 1
                if idx < 0 or idx >= extent0:
                    raise IndexError(f"{array}({idx + 1}) out of bounds 1..{extent0}")
                return machine.read(pe, array, idx, cacheable=cacheable,
                                    bypass=bypass, craft=craft)

            return read1

        if len(sub_fns) == 2:
            sub0, sub1 = sub_fns
            extent0, extent1 = shape
            stride1 = strides[1]

            def read2(env: dict, pe: int) -> float:
                i = int(sub0(env, pe)) - 1
                j = int(sub1(env, pe)) - 1
                if i < 0 or i >= extent0 or j < 0 or j >= extent1:
                    raise IndexError(
                        f"{array}({i + 1}, {j + 1}) out of bounds {shape}")
                return machine.read(pe, array, i + j * stride1,
                                    cacheable=cacheable, bypass=bypass, craft=craft)

            return read2

        def read_n(env: dict, pe: int) -> float:
            flat = 0
            for fn, extent, stride in zip(sub_fns, shape, strides):
                idx = int(fn(env, pe)) - 1
                if idx < 0 or idx >= extent:
                    raise IndexError(f"{array} subscript {idx + 1} out of bounds 1..{extent}")
                flat += idx * stride
            return machine.read(pe, array, flat, cacheable=cacheable,
                                bypass=bypass, craft=craft)

        return read_n

    def _compile_flat_index(self, ref: ArrayRef) -> Callable[[dict, int], int]:
        decl = self.program.array(ref.array)
        sub_fns = [self._compile_expr(s) for s in ref.subscripts]
        shape = decl.shape
        strides = decl.strides()
        array = ref.array

        if len(sub_fns) == 2:
            sub0, sub1 = sub_fns
            extent0, extent1 = shape
            stride1 = strides[1]

            def flat2(env: dict, pe: int) -> int:
                i = int(sub0(env, pe)) - 1
                j = int(sub1(env, pe)) - 1
                if i < 0 or i >= extent0 or j < 0 or j >= extent1:
                    raise IndexError(f"{array}({i + 1}, {j + 1}) out of bounds {shape}")
                return i + j * stride1

            return flat2

        def flat_n(env: dict, pe: int) -> int:
            flat = 0
            for fn, extent, stride in zip(sub_fns, shape, strides):
                idx = int(fn(env, pe)) - 1
                if idx < 0 or idx >= extent:
                    raise IndexError(f"{array} subscript {idx + 1} out of bounds 1..{extent}")
                flat += idx * stride
            return flat

        return flat_n

    def _build_binop(self, expr: BinOp) -> EvalFn:
        left = self._compile_expr(expr.left)
        right = self._compile_expr(expr.right)
        op = expr.op
        if op == "+":
            return lambda env, pe: left(env, pe) + right(env, pe)
        if op == "-":
            return lambda env, pe: left(env, pe) - right(env, pe)
        if op == "*":
            return lambda env, pe: left(env, pe) * right(env, pe)
        if op == "/":
            def divide(env, pe):
                a = left(env, pe)
                b = right(env, pe)
                if isinstance(a, int) and isinstance(b, int):
                    return int(a / b)  # Fortran integer division truncates
                return a / b
            return divide
        if op == "**":
            return lambda env, pe: left(env, pe) ** right(env, pe)
        if op == "mod":
            return lambda env, pe: math.fmod(left(env, pe), right(env, pe))
        if op == "min":
            return lambda env, pe: min(left(env, pe), right(env, pe))
        if op == "max":
            return lambda env, pe: max(left(env, pe), right(env, pe))
        if op == "<":
            return lambda env, pe: left(env, pe) < right(env, pe)
        if op == "<=":
            return lambda env, pe: left(env, pe) <= right(env, pe)
        if op == ">":
            return lambda env, pe: left(env, pe) > right(env, pe)
        if op == ">=":
            return lambda env, pe: left(env, pe) >= right(env, pe)
        if op == "==":
            return lambda env, pe: left(env, pe) == right(env, pe)
        if op == "!=":
            return lambda env, pe: left(env, pe) != right(env, pe)
        if op == "and":
            return lambda env, pe: bool(left(env, pe)) and bool(right(env, pe))
        if op == "or":
            return lambda env, pe: bool(left(env, pe)) or bool(right(env, pe))
        raise InterpreterError(f"unknown operator {op!r}")

    def _build_intrinsic(self, expr: IntrinsicCall) -> EvalFn:
        arg_fns = [self._compile_expr(a) for a in expr.args]
        name = expr.name
        if name == "sqrt":
            fn0 = arg_fns[0]
            return lambda env, pe: math.sqrt(fn0(env, pe))
        if name == "abs":
            fn0 = arg_fns[0]
            return lambda env, pe: abs(fn0(env, pe))
        if name == "exp":
            fn0 = arg_fns[0]
            return lambda env, pe: math.exp(fn0(env, pe))
        if name == "log":
            fn0 = arg_fns[0]
            return lambda env, pe: math.log(fn0(env, pe))
        if name == "sin":
            fn0 = arg_fns[0]
            return lambda env, pe: math.sin(fn0(env, pe))
        if name == "cos":
            fn0 = arg_fns[0]
            return lambda env, pe: math.cos(fn0(env, pe))
        if name == "min":
            fa, fb = arg_fns
            return lambda env, pe: min(fa(env, pe), fb(env, pe))
        if name == "max":
            fa, fb = arg_fns
            return lambda env, pe: max(fa(env, pe), fb(env, pe))
        if name == "mod":
            fa, fb = arg_fns
            return lambda env, pe: math.fmod(fa(env, pe), fb(env, pe))
        if name == "int":
            fn0 = arg_fns[0]
            return lambda env, pe: int(fn0(env, pe))
        if name == "real":
            fn0 = arg_fns[0]
            return lambda env, pe: float(fn0(env, pe))
        if name == "sign":
            fa, fb = arg_fns
            return lambda env, pe: math.copysign(abs(fa(env, pe)), fb(env, pe))
        raise InterpreterError(f"unknown intrinsic {name!r}")

    # ------------------------------------------------------------------
    # static costs
    # ------------------------------------------------------------------
    def _arith_cost(self, expr: Expr) -> float:
        """Arithmetic-only cycles of an expression (memory traffic is
        charged by the machine as it happens)."""
        total = expr_cost(expr, self.params)
        # expr_cost charges cache_hit per ArrayRef; strip that part since
        # the machine charges real access costs.
        loads = sum(1 for node in expr.walk() if isinstance(node, ArrayRef))
        return max(0.0, total - loads * self.params.cache_hit
                   - self.params.write_local * 0)


def _contains_doall(stmt: Stmt) -> bool:
    return any(isinstance(s, Loop) and s.kind == LoopKind.DOALL
               for s in stmt.walk())


def _callee_contains_doall(program: Program, call: CallStmt,
                           _seen: Optional[set] = None) -> bool:
    seen = _seen or set()
    if call.name in seen:
        return False
    seen.add(call.name)
    callee = program.procedures[call.name]
    for stmt in callee.walk():
        if isinstance(stmt, Loop) and stmt.kind == LoopKind.DOALL:
            return True
        if isinstance(stmt, CallStmt) and _callee_contains_doall(program, stmt, seen):
            return True
    return False


def run_program(program: Program, params: MachineParams,
                version: str = Version.CCDP, on_stale: str = "record",
                trace_epochs: bool = False,
                backend: str = "reference",
                fault_plan=None, oracle: bool = False,
                tracer=None, plane_epochs: bool = True) -> RunResult:
    """One-call convenience: interpret ``program`` as the given version.

    Batched fault-free runs reuse a warm interpreter from
    :mod:`repro.runtime.plancache`, so chunk planning and address-stream
    compilation are paid once per (program, version, params) per process.
    """
    config = ExecutionConfig.for_version(version, on_stale=on_stale,
                                         backend=backend,
                                         fault_plan=fault_plan, oracle=oracle,
                                         tracer=tracer,
                                         plane_epochs=plane_epochs)
    if plancache.eligible(config):
        interp = plancache.fetch(program, params, config, trace_epochs)
        if interp is None:
            interp = make_interpreter(program, params, config,
                                      trace_epochs=trace_epochs)
            plancache.store(program, params, config, trace_epochs, interp)
        return interp.run()
    interp = make_interpreter(program, params, config,
                              trace_epochs=trace_epochs)
    return interp.run()


def make_interpreter(program: Program, params: MachineParams,
                     config: Optional[ExecutionConfig] = None,
                     trace_epochs: bool = False,
                     trace_reads: bool = False) -> Interpreter:
    """Build the interpreter the config's backend asks for."""
    cfg = config or ExecutionConfig()
    if cfg.backend == "batched":
        from .batched import BatchedInterpreter
        return BatchedInterpreter(program, params, cfg,
                                  trace_epochs=trace_epochs,
                                  trace_reads=trace_reads)
    return Interpreter(program, params, cfg, trace_epochs=trace_epochs,
                       trace_reads=trace_reads)


__all__ = ["Interpreter", "InterpreterError", "RunResult", "EpochRecord",
           "run_program", "make_interpreter"]
