"""Fault model specifications.

Each model is a small frozen dataclass describing *one* way the machine
can degrade; a :class:`FaultPlan` composes any number of them with one
seed.  Plans are pure specifications — hashable, comparable, printable —
so they can live inside the (frozen) execution configuration and be
reproduced exactly from a CLI string.  All randomness happens at run
time in :class:`~repro.faults.state.FaultState`, which derives one
independent, deterministic RNG stream per (model, PE) from the plan
seed; the same plan therefore injects the same faults at the same
machine events on every run, on every backend.

The models map to the paper's two runtime correctness rules:

* **Rule 1** — cached entries are invalidated *before* each prefetch is
  issued.  :class:`EvictionStormFault` attacks the cache directly:
  random invalidations can only cost refills, never correctness, if the
  rule holds everywhere.
* **Rule 2** — prefetches dropped for lack of hardware resources are
  replaced by bypass-cache fetches.  :class:`PrefetchDropFault` and
  :class:`QueueSqueezeFault` force the drop path far more often than a
  16-slot queue ever would naturally, so the bypass degradation is
  exercised, observably (``pf_dropped`` / ``pf_drop_bypass`` stats).

:class:`LatencyJitterFault` and :class:`RemoteFailFault` perturb the
network: they move arrival/completion times and add bounded
retry/backoff delays, shuffling every prefetch-timeliness decision
without ever changing what value an access returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Tuple


class FaultPlanError(ValueError):
    """A fault plan (or its textual spec) is malformed."""


def _check_rate(model: str, rate: float) -> None:
    if not isinstance(rate, (int, float)) or not 0.0 <= float(rate) <= 1.0:
        raise FaultPlanError(
            f"{model}: rate must be a probability in [0, 1], got {rate!r}")


def _check_nonneg_int(model: str, name: str, value: int) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise FaultPlanError(
            f"{model}: {name} must be a non-negative integer, got {value!r}")


def _check_pos_int(model: str, name: str, value: int) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise FaultPlanError(
            f"{model}: {name} must be a positive integer, got {value!r}")


@dataclass(frozen=True)
class FaultModel:
    """Base class: every fault model has an injection probability."""

    rate: float = 0.0

    #: spec-string name, set by each subclass (used by the parser and in
    #: error messages / stats labels).
    name = "fault"

    def __post_init__(self) -> None:
        _check_rate(self.name, self.rate)

    def describe(self) -> str:
        parts = [f"rate={self.rate:g}"]
        for f in fields(self):
            if f.name != "rate":
                parts.append(f"{f.name}={getattr(self, f.name)}")
        return f"{self.name}({', '.join(parts)})"


@dataclass(frozen=True)
class PrefetchDropFault(FaultModel):
    """Drop an issued line prefetch with probability ``rate`` even when
    the queue has room — modelling arbitration loss / queue starvation.
    The dropped prefetch's use point degrades to a bypass-cache fetch
    (the paper's rule 2), exactly like a capacity drop."""

    rate: float = 0.25
    name = "drop"


@dataclass(frozen=True)
class QueueSqueezeFault(FaultModel):
    """Transiently squeeze the prefetch queue's capacity to ``min_slots``
    with probability ``rate`` per issue, overflowing it early.  The
    overflow is a normal capacity drop: counted in ``pf_dropped`` and
    replaced by a bypass fetch at the use point."""

    rate: float = 0.25
    min_slots: int = 0
    name = "squeeze"

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_nonneg_int(self.name, "min_slots", self.min_slots)


@dataclass(frozen=True)
class LatencyJitterFault(FaultModel):
    """Add 1..``max_extra`` cycles of network jitter to a remote
    transfer (demand read/write, prefetch arrival, vector completion)
    with probability ``rate``.  Timing-only: values are unaffected."""

    rate: float = 0.5
    max_extra: int = 64
    name = "jitter"

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_pos_int(self.name, "max_extra", self.max_extra)


@dataclass(frozen=True)
class RemoteFailFault(FaultModel):
    """Transient remote-memory failure: an attempt fails with probability
    ``rate`` and is retried after an exponential backoff
    (``backoff * 2**attempt`` cycles, each retry re-paying the base
    latency), at most ``max_retries`` times; the access then succeeds
    unconditionally.  Bounded, so a run always completes."""

    rate: float = 0.1
    max_retries: int = 3
    backoff: int = 50
    name = "remotefail"

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_nonneg_int(self.name, "max_retries", self.max_retries)
        _check_nonneg_int(self.name, "backoff", self.backoff)


@dataclass(frozen=True)
class EvictionStormFault(FaultModel):
    """With probability ``rate`` per memory operation, invalidate up to
    ``lines`` randomly chosen resident cache lines on the issuing PE.
    Write-through caches make eviction always safe — a storm can only
    add misses, never staleness — which is precisely what the oracle
    proves."""

    rate: float = 0.05
    lines: int = 4
    name = "evict"

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_pos_int(self.name, "lines", self.lines)


#: Registry used by the spec parser and the per-PE RNG derivation (the
#: position of a model's class here keys its RNG stream, so streams stay
#: stable as plans gain or lose other models).
MODEL_TYPES: Tuple[type, ...] = (PrefetchDropFault, QueueSqueezeFault,
                                 LatencyJitterFault, RemoteFailFault,
                                 EvictionStormFault)


@dataclass(frozen=True)
class FaultPlan:
    """A composition of fault models plus the seed that makes every
    injection deterministic.  Immutable and hashable, so it can ride in
    a frozen :class:`~repro.runtime.exec_config.ExecutionConfig`."""

    models: Tuple[FaultModel, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.models, tuple):
            # Accept any iterable of models but store a tuple (hashable).
            object.__setattr__(self, "models", tuple(self.models))
        for model in self.models:
            if not isinstance(model, FaultModel):
                raise FaultPlanError(
                    f"fault plan entries must be FaultModel instances, "
                    f"got {type(model).__name__}: {model!r}")
        if (not isinstance(self.seed, int) or isinstance(self.seed, bool)
                or self.seed < 0):
            raise FaultPlanError(
                f"fault seed must be a non-negative integer, got "
                f"{self.seed!r}")

    @property
    def active(self) -> bool:
        return bool(self.models)

    def describe(self) -> str:
        if not self.models:
            return "fault-free"
        inner = ", ".join(m.describe() for m in self.models)
        return f"FaultPlan(seed={self.seed}: {inner})"


__all__ = ["FaultPlanError", "FaultModel", "PrefetchDropFault",
           "QueueSqueezeFault", "LatencyJitterFault", "RemoteFailFault",
           "EvictionStormFault", "MODEL_TYPES", "FaultPlan"]
