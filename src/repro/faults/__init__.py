"""Deterministic fault injection: seeded degradation of the machine
model (dropped prefetches, queue squeezes, network jitter, transient
remote failures, cache eviction storms) so the coherence guarantees can
be tested under adversarial schedules instead of only the happy path.

A :class:`FaultPlan` is an immutable spec (composable dataclasses + one
seed); :class:`FaultState` is its per-run realisation with one RNG
stream per (model, PE).  Wire a plan through
:class:`~repro.runtime.exec_config.ExecutionConfig` (``fault_plan=``),
``run_program(..., fault_plan=...)`` or the CLI ``--faults`` /
``--fault-seed`` flags; pair with the coherence oracle
(:mod:`repro.machine.oracle`) to prove runs degrade only in cycles,
never in values.
"""

from .models import (EvictionStormFault, FaultModel, FaultPlan,
                     FaultPlanError, LatencyJitterFault, MODEL_TYPES,
                     PrefetchDropFault, QueueSqueezeFault, RemoteFailFault)
from .parse import PRESETS, parse_fault_plan
from .state import FaultState, FaultStats, make_state

__all__ = [
    "FaultModel", "FaultPlan", "FaultPlanError",
    "PrefetchDropFault", "QueueSqueezeFault", "LatencyJitterFault",
    "RemoteFailFault", "EvictionStormFault", "MODEL_TYPES",
    "parse_fault_plan", "PRESETS",
    "FaultState", "FaultStats", "make_state",
]
