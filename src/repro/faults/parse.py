"""Textual fault-plan specs: the ``--faults`` grammar.

A spec is a comma-separated list of model entries::

    drop=0.3, squeeze=0.2:min_slots=1, jitter=0.5:max_extra=40,
    remotefail=0.1:max_retries=2:backoff=25, evict=0.05:lines=4

Each entry is ``name[=rate][:key=value ...]``; omitted fields keep the
model's defaults.  Three named presets cover the common cases::

    --faults light    a mild mix of every model
    --faults storm    aggressive eviction storms + queue squeezes
    --faults chaos    everything, at hostile rates

Errors are :class:`~repro.faults.models.FaultPlanError` with messages
that say what was wrong *and* what would have been right — they surface
at argument-parsing time, never as a traceback deep inside a run.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Dict, Optional

from .models import (FaultModel, FaultPlan, FaultPlanError, MODEL_TYPES)

_BY_NAME: Dict[str, type] = {cls.name: cls for cls in MODEL_TYPES}

PRESETS: Dict[str, str] = {
    "light": ("drop=0.05,squeeze=0.05:min_slots=2,jitter=0.2:max_extra=16,"
              "remotefail=0.02,evict=0.01:lines=2"),
    "storm": "evict=0.2:lines=8,squeeze=0.5:min_slots=0,drop=0.3",
    "chaos": ("drop=0.4,squeeze=0.4:min_slots=0,jitter=0.8:max_extra=120,"
              "remotefail=0.25:max_retries=4:backoff=80,evict=0.1:lines=6"),
}


def _known() -> str:
    return (f"known models: {', '.join(sorted(_BY_NAME))}; "
            f"presets: {', '.join(sorted(PRESETS))}")


def _parse_number(model: str, key: str, text: str, want_int: bool):
    try:
        return int(text) if want_int else float(text)
    except ValueError:
        kind = "an integer" if want_int else "a number"
        raise FaultPlanError(
            f"{model}: {key} must be {kind}, got {text!r}") from None


def parse_fault_plan(spec: Optional[str], seed: int = 0) -> Optional[FaultPlan]:
    """Parse a ``--faults`` spec into a :class:`FaultPlan`.

    ``None``, ``""`` and ``"none"`` mean no plan (returns ``None``).
    Raises :class:`FaultPlanError` with an actionable message otherwise.
    """
    if spec is None:
        return None
    spec = spec.strip()
    if not spec or spec.lower() == "none":
        return None
    if spec.lower() in PRESETS:
        spec = PRESETS[spec.lower()]
    models = []
    for raw_entry in spec.split(","):
        entry = raw_entry.strip()
        if not entry:
            continue
        head, *opts = entry.split(":")
        name, sep, rate_text = head.partition("=")
        name = name.strip().lower()
        cls = _BY_NAME.get(name)
        if cls is None:
            raise FaultPlanError(
                f"unknown fault model {name!r} in {raw_entry.strip()!r}; "
                + _known())
        kwargs: Dict[str, object] = {}
        if sep:
            kwargs["rate"] = _parse_number(name, "rate", rate_text.strip(),
                                           want_int=False)
        valid = {f.name: f for f in fields(cls) if f.name != "rate"}
        for opt in opts:
            key, sep2, value = opt.partition("=")
            key = key.strip()
            if not sep2 or key not in valid:
                raise FaultPlanError(
                    f"{name}: unknown option {opt.strip()!r}; valid options: "
                    f"{', '.join(sorted(valid)) or '(none)'} "
                    f"(syntax: {name}=RATE:key=value)")
            kwargs[key] = _parse_number(name, key, value.strip(),
                                        want_int=valid[key].type is int
                                        or valid[key].type == "int")
        models.append(cls(**kwargs))
    if not models:
        raise FaultPlanError(
            f"fault spec {spec!r} contains no models; " + _known())
    return FaultPlan(models=tuple(models), seed=seed)


__all__ = ["parse_fault_plan", "PRESETS"]
