"""Runtime fault-injection state: deterministic RNG streams + counters.

A :class:`FaultState` is instantiated once per :class:`~repro.machine
.machine.Machine` from an immutable :class:`~repro.faults.models
.FaultPlan`.  Every (model, PE) pair gets its own independent generator
seeded from ``(plan.seed, model stream id, pe)``, so the injection
sequence a PE experiences depends only on the plan and that PE's own
event order — never on how the interpreter interleaves PEs, and never
on which backend serviced the surrounding code (the batched backend
falls back to the reference event order whenever a plan is active).

The injection *decisions* live here; the *consequences* (bypass fetches,
retries, evictions) are applied by the machine layer at its hook points.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

import numpy as np

from .models import (EvictionStormFault, FaultModel, FaultPlan,
                     LatencyJitterFault, MODEL_TYPES, PrefetchDropFault,
                     QueueSqueezeFault, RemoteFailFault)


@dataclass
class FaultStats:
    """What the fault layer actually did during one run."""

    forced_drops: int = 0        #: prefetches dropped by PrefetchDropFault
    squeezed_issues: int = 0     #: issues that saw a squeezed capacity
    jitter_events: int = 0
    jitter_cycles: float = 0.0
    remote_failures: int = 0     #: failed attempts (each retried)
    retry_cycles: float = 0.0    #: re-paid latency + backoff
    storms: int = 0
    evicted_lines: int = 0
    batch_fallbacks: int = 0     #: batched chunks sent to the reference path

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> str:
        return (f"forced_drops={self.forced_drops} "
                f"squeezed={self.squeezed_issues} "
                f"jitter={self.jitter_events}ev/{self.jitter_cycles:.0f}cyc "
                f"remote_failures={self.remote_failures} "
                f"retry_cycles={self.retry_cycles:.0f} "
                f"storms={self.storms} evicted={self.evicted_lines} "
                f"batch_fallbacks={self.batch_fallbacks}")


def _stream_id(model: FaultModel) -> int:
    return MODEL_TYPES.index(type(model))


class FaultState:
    """Per-run fault machinery: one RNG per (model, PE), shared stats."""

    def __init__(self, plan: FaultPlan, n_pes: int) -> None:
        self.plan = plan
        self.n_pes = n_pes
        self.stats = FaultStats()
        # Machine-event tracer (set by Machine when tracing is on):
        # injection decisions surface as fault_activation events, so a
        # trace shows *where* in the event stream each fault landed.
        self.tracer = None
        self._drop: List[PrefetchDropFault] = []
        self._squeeze: List[QueueSqueezeFault] = []
        self._jitter: List[LatencyJitterFault] = []
        self._fail: List[RemoteFailFault] = []
        self._storm: List[EvictionStormFault] = []
        by_kind = {PrefetchDropFault: self._drop,
                   QueueSqueezeFault: self._squeeze,
                   LatencyJitterFault: self._jitter,
                   RemoteFailFault: self._fail,
                   EvictionStormFault: self._storm}
        for model in plan.models:
            by_kind[type(model)].append(model)
        # rngs[(stream_id, occurrence_index, pe)] -> Generator.  The
        # occurrence index distinguishes two instances of the same model
        # class in one plan.
        self._rngs: Dict[tuple, np.random.Generator] = {}
        seen: Dict[int, int] = {}
        for model in plan.models:
            sid = _stream_id(model)
            occ = seen.get(sid, 0)
            seen[sid] = occ + 1
            for pe in range(n_pes):
                seq = np.random.SeedSequence((plan.seed, sid, occ, pe))
                self._rngs[(id(model), pe)] = np.random.default_rng(seq)

    def _rng(self, model: FaultModel, pe: int) -> np.random.Generator:
        return self._rngs[(id(model), pe)]

    # -- prefetch-queue hooks ----------------------------------------------
    def force_drop(self, pe: int) -> bool:
        """Should this prefetch issue be dropped outright?"""
        dropped = False
        for model in self._drop:
            if self._rng(model, pe).random() < model.rate:
                dropped = True
        if dropped:
            self.stats.forced_drops += 1
            if self.tracer is not None:
                self.tracer.emit(("fault_activation", pe, "prefetch_drop",
                                  "issue dropped before the queue"))
        return dropped

    def squeeze_capacity(self, pe: int, capacity: int) -> int:
        """Effective queue capacity for one issue (<= hardware capacity)."""
        cap = capacity
        squeezed = False
        for model in self._squeeze:
            if self._rng(model, pe).random() < model.rate:
                cap = min(cap, model.min_slots)
                squeezed = True
        if squeezed:
            self.stats.squeezed_issues += 1
            if self.tracer is not None:
                self.tracer.emit(("fault_activation", pe, "queue_squeeze",
                                  f"capacity squeezed to {cap}"))
        return cap

    # -- network hooks -----------------------------------------------------
    def remote_penalty(self, pe: int, base_latency: float) -> float:
        """Extra cycles for one remote transfer: latency jitter plus
        transient failures with bounded exponential retry/backoff."""
        extra = 0.0
        for model in self._jitter:
            if self._rng(model, pe).random() < model.rate:
                extra += float(self._rng(model, pe).integers(
                    1, model.max_extra + 1))
                self.stats.jitter_events += 1
        if extra:
            self.stats.jitter_cycles += extra
            if self.tracer is not None:
                self.tracer.emit(("fault_activation", pe, "latency_jitter",
                                  f"+{extra:g} cycles"))
        failures = 0
        for model in self._fail:
            rng = self._rng(model, pe)
            for attempt in range(model.max_retries):
                if rng.random() >= model.rate:
                    break  # attempt succeeded
                # Failed attempt: the latency was paid for nothing; back
                # off, then retry (re-paying the base latency).
                penalty = float(model.backoff) * (2 ** attempt) + base_latency
                extra += penalty
                failures += 1
                self.stats.remote_failures += 1
                self.stats.retry_cycles += penalty
            # After max_retries failures the final attempt succeeds
            # unconditionally — the fault is transient by construction.
        if failures and self.tracer is not None:
            self.tracer.emit(("fault_activation", pe, "remote_fail",
                              f"{failures} failed attempts, retried"))
        return extra

    # -- cache hooks -------------------------------------------------------
    def maybe_evict(self, pe: int, cache) -> None:
        """Random eviction storm against one PE's cache.  Always coherence-
        safe: the cache is write-through, so dropping lines only converts
        future hits into (fresh) misses."""
        for model in self._storm:
            rng = self._rng(model, pe)
            if rng.random() >= model.rate:
                continue
            resident = np.flatnonzero(cache.tags >= 0)
            if resident.size == 0:
                continue
            k = min(model.lines, int(resident.size))
            sets = rng.choice(resident, size=k, replace=False)
            evicted = cache.invalidate_sets(sets)
            self.stats.storms += 1
            self.stats.evicted_lines += evicted
            if self.tracer is not None:
                self.tracer.emit(("fault_activation", pe, "eviction_storm",
                                  f"{evicted} lines evicted"))
                # Storm invalidations are fault consequences, not program
                # invalidations: reason "fault" keeps the fold from
                # counting them against PEStats.invalidations.
                self.tracer.emit(("invalidate", pe, "*", evicted, "fault",
                                  -1, -1))


def make_state(plan: Optional[FaultPlan], n_pes: int) -> Optional[FaultState]:
    """A :class:`FaultState` for an active plan, else ``None``."""
    if plan is None or not plan.active:
        return None
    return FaultState(plan, n_pes)


__all__ = ["FaultStats", "FaultState", "make_state"]
