"""Stale reference analysis (step 1 of the CCDP scheme).

Identifies *potentially-stale* read references: reads that may observe
an out-of-date cached copy because another processor wrote the data in
an earlier epoch (caches on the target machine are non-coherent and
write-through, so main memory is always current but cached lines go
stale silently).

The analysis is a forward dataflow over the epoch flow graph.  For each
shared array it accumulates three *writer-class* section sets:

``w_serial``
    sections written by serial epochs (executed on PE 0);
``w_aligned``
    sections written by owner-aligned accesses in parallel epochs
    (writer == owner of every element);
``w_other``
    sections written by possibly-non-owner accesses.

A read is potentially stale when its footprint overlaps a section whose
writer class may denote a *different* PE than the reader class:

=============  =========  ==========  ========
reader ↓ / writer →  w_serial  w_aligned   w_other
ALIGNED (owner)      stale      fresh       stale
SERIAL (PE 0)        fresh      stale       stale
other (any PE)       stale      stale       stale
=============  =========  ==========  ========

This is the conservative (no-kill) variant of the Choi–Yew analysis:
writes only ever *add* staleness, which is sound — over-approximating
the stale set costs extra prefetches, never correctness.  Cold caches
make the initial state empty, so first-touch reads are never stale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir.program import Program
from .alignment import AccessClass
from .epochs import Epoch, EpochGraph, RefInfo, build_epoch_graph
from .sections import Section, SectionSet


@dataclass
class ArrayState:
    """Per-array accumulated writer-class sections."""

    w_serial: SectionSet
    w_aligned: SectionSet
    w_other: SectionSet

    @staticmethod
    def empty(array: str) -> "ArrayState":
        return ArrayState(SectionSet(array), SectionSet(array), SectionSet(array))

    def copy(self) -> "ArrayState":
        return ArrayState(self.w_serial.copy(), self.w_aligned.copy(), self.w_other.copy())

    def union(self, other: "ArrayState") -> bool:
        changed = self.w_serial.union(other.w_serial)
        changed |= self.w_aligned.union(other.w_aligned)
        changed |= self.w_other.union(other.w_other)
        return changed

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArrayState):
            return NotImplemented
        return (self.w_serial == other.w_serial
                and self.w_aligned == other.w_aligned
                and self.w_other == other.w_other)


class FlowState:
    """Dataflow fact: ArrayState per shared array."""

    def __init__(self) -> None:
        self.arrays: Dict[str, ArrayState] = {}

    def state_for(self, array: str) -> ArrayState:
        if array not in self.arrays:
            self.arrays[array] = ArrayState.empty(array)
        return self.arrays[array]

    def copy(self) -> "FlowState":
        fresh = FlowState()
        fresh.arrays = {k: v.copy() for k, v in self.arrays.items()}
        return fresh

    def union(self, other: "FlowState") -> bool:
        changed = False
        for array, state in other.arrays.items():
            changed |= self.state_for(array).union(state)
        return changed


def _read_is_stale(read: RefInfo, state: ArrayState) -> bool:
    klass = read.alignment.klass
    footprint = read.section
    if klass == AccessClass.ALIGNED:
        return state.w_serial.overlaps(footprint) or state.w_other.overlaps(footprint)
    if klass == AccessClass.SERIAL:
        return state.w_aligned.overlaps(footprint) or state.w_other.overlaps(footprint)
    return (state.w_serial.overlaps(footprint)
            or state.w_aligned.overlaps(footprint)
            or state.w_other.overlaps(footprint))


def _apply_writes(epoch: Epoch, state: FlowState) -> None:
    for write in epoch.writes:
        if not write.decl.is_shared:
            continue
        array_state = state.state_for(write.decl.name)
        klass = write.alignment.klass
        if klass == AccessClass.SERIAL:
            array_state.w_serial.add(write.section)
        elif klass == AccessClass.ALIGNED:
            array_state.w_aligned.add(write.section)
        else:
            array_state.w_other.add(write.section)


@dataclass
class StaleAnalysisResult:
    """Outcome of stale reference analysis.

    ``stale_reads`` maps reference uid -> :class:`RefInfo` for every
    potentially-stale read occurrence; this set is the input ``P`` of the
    paper's prefetch target analysis (Fig. 1).
    """

    graph: EpochGraph
    stale_reads: Dict[int, RefInfo] = field(default_factory=dict)
    fresh_reads: Dict[int, RefInfo] = field(default_factory=dict)
    epoch_in_states: Dict[int, FlowState] = field(default_factory=dict)
    iterations: int = 0

    @property
    def stale_uids(self) -> Set[int]:
        return set(self.stale_reads)

    def is_stale(self, uid: int) -> bool:
        return uid in self.stale_reads

    def stale_in_epoch(self, epoch_id: int) -> List[RefInfo]:
        return [info for info in self.stale_reads.values() if info.epoch_id == epoch_id]

    def summary(self) -> str:
        by_array: Dict[str, int] = {}
        for info in self.stale_reads.values():
            by_array[info.decl.name] = by_array.get(info.decl.name, 0) + 1
        total = len(self.stale_reads) + len(self.fresh_reads)
        parts = [f"{len(self.stale_reads)}/{total} shared reads potentially stale"]
        parts += [f"{name}: {count}" for name, count in sorted(by_array.items())]
        return "; ".join(parts)


def analyse_stale_references(program: Program,
                             graph: Optional[EpochGraph] = None) -> StaleAnalysisResult:
    """Run stale reference analysis; returns per-reference verdicts.

    The dataflow iterates to a fixpoint (needed for region-loop back
    edges — a write in a later epoch of a time loop makes reads in an
    earlier epoch stale on the next time step).
    """
    if graph is None:
        graph = build_epoch_graph(program)
    result = StaleAnalysisResult(graph=graph)

    in_states: Dict[int, FlowState] = {e.id: FlowState() for e in graph.epochs}
    out_states: Dict[int, FlowState] = {e.id: FlowState() for e in graph.epochs}

    # Worklist dataflow to fixpoint; the lattice is finite-height in
    # practice because SectionSet unions saturate at the rectangular hull.
    worklist = [e.id for e in graph.epochs]
    iterations = 0
    max_iterations = 50 * max(1, len(graph.epochs))
    while worklist:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - safety net
            break
        epoch_id = worklist.pop(0)
        epoch = graph.epoch(epoch_id)
        in_state = FlowState()
        for pred in graph.preds[epoch_id]:
            in_state.union(out_states[pred])
        in_states[epoch_id] = in_state
        new_out = in_state.copy()
        _apply_writes(epoch, new_out)
        # Monotone update: grow the stored OUT by the recomputed one;
        # successors re-run only when the OUT actually gained facts.
        grew = out_states[epoch_id].union(new_out)
        if grew or iterations <= len(graph.epochs):
            for succ in graph.succs[epoch_id]:
                if succ not in worklist:
                    worklist.append(succ)

    result.epoch_in_states = in_states
    result.iterations = iterations

    for epoch in graph.epochs:
        state = in_states[epoch.id]
        for read in epoch.reads:
            if not read.decl.is_shared:
                continue
            if _read_is_stale(read, state.state_for(read.decl.name)):
                result.stale_reads[read.uid] = read
            else:
                result.fresh_reads[read.uid] = read
    return result


__all__ = ["ArrayState", "FlowState", "StaleAnalysisResult",
           "analyse_stale_references"]
