"""Epoch flow graph construction.

The paper's execution model partitions a parallel program into a
sequence of *epochs* — parallel epochs (one DOALL loop, concurrent
tasks) and serial epochs (straight-line/serial-loop code executed as a
single task) — with synchronisation and a memory update at every epoch
boundary.  Stale reference analysis is a dataflow problem over the
*epoch flow graph*: nodes are epochs, edges follow control flow, and
serial loops that contain parallel loops ("region loops", e.g. the time
loops of TOMCATV and SWIM) contribute back edges.

Procedure calls whose callees (transitively) contain DOALL loops are
inlined into the graph; purely-serial callees are summarised as
read/write sections attached to the calling epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.arrays import ArrayDecl
from ..ir.expr import ArrayRef, Expr, VarRef
from ..ir.program import Program
from ..ir.stmt import (Assign, CallStmt, If, InvalidateLines, Loop, LoopKind,
                       PrefetchLine, PrefetchVector, Stmt)
from ..ir.visitor import const_int_value, substitute_in_stmt
from .affine import AffineRef, affine_ref
from .alignment import AccessClass, Alignment, classify
from .callgraph import CallGraph
from .sections import LoopEnv, Section, full_section, section_of_ref


@dataclass
class RefInfo:
    """One shared-array reference occurrence with everything the CCDP
    passes need to know about it."""

    ref: ArrayRef
    stmt: Stmt
    decl: ArrayDecl
    is_write: bool
    aref: Optional[AffineRef]
    section: Section
    alignment: Alignment
    epoch_id: int = -1
    loop_stack: Tuple[Loop, ...] = ()
    summarised_call: Optional[str] = None  #: callee name when from a summary

    @property
    def uid(self) -> int:
        return self.ref.uid

    @property
    def innermost_loop(self) -> Optional[Loop]:
        return self.loop_stack[-1] if self.loop_stack else None

    def describe(self) -> str:
        kind = "write" if self.is_write else "read"
        return f"{kind} {self.ref!r} [{self.alignment.klass}] in epoch {self.epoch_id}"


class EpochKind:
    SERIAL = "serial"
    PARALLEL = "parallel"


@dataclass
class Epoch:
    """One node of the epoch flow graph."""

    id: int
    kind: str
    stmts: List[Stmt]
    doall: Optional[Loop]
    env: LoopEnv
    reads: List[RefInfo] = field(default_factory=list)
    writes: List[RefInfo] = field(default_factory=list)
    label: str = ""

    @property
    def is_parallel(self) -> bool:
        return self.kind == EpochKind.PARALLEL

    def describe(self) -> str:
        if self.is_parallel:
            assert self.doall is not None
            tag = f"doall {self.doall.var}"
            if self.doall.label:
                tag += f" [{self.doall.label}]"
        else:
            tag = f"serial ({len(self.stmts)} stmts)"
        return f"epoch {self.id}: {tag}"


class EpochGraph:
    """Epochs + control-flow edges (including region-loop back edges)."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.epochs: List[Epoch] = []
        self.succs: Dict[int, List[int]] = {}
        self.preds: Dict[int, List[int]] = {}
        self.entry_ids: List[int] = []
        self.exit_ids: List[int] = []
        self.back_edges: List[Tuple[int, int]] = []

    def add_epoch(self, epoch: Epoch) -> Epoch:
        self.epochs.append(epoch)
        self.succs[epoch.id] = []
        self.preds[epoch.id] = []
        return epoch

    def add_edge(self, src: int, dst: int, back: bool = False) -> None:
        if dst not in self.succs[src]:
            self.succs[src].append(dst)
            self.preds[dst].append(src)
        if back:
            self.back_edges.append((src, dst))

    def epoch(self, epoch_id: int) -> Epoch:
        return self.epochs[epoch_id]

    def parallel_epochs(self) -> List[Epoch]:
        return [e for e in self.epochs if e.is_parallel]

    def all_refs(self) -> List[RefInfo]:
        out: List[RefInfo] = []
        for epoch in self.epochs:
            out.extend(epoch.reads)
            out.extend(epoch.writes)
        return out

    def describe(self) -> str:
        lines = [e.describe() + f" -> {self.succs[e.id]}" for e in self.epochs]
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Graph construction
# ---------------------------------------------------------------------------

def build_epoch_graph(program: Program) -> EpochGraph:
    """Build the epoch flow graph of ``program``'s entry procedure."""
    graph = EpochGraph(program)
    callgraph = CallGraph.build(program)
    builder = _GraphBuilder(graph, callgraph)
    entry_ids, exit_ids = builder.build_region(program.entry_proc.body, {}, [])
    graph.entry_ids = entry_ids
    graph.exit_ids = exit_ids
    for epoch in graph.epochs:
        _collect_refs(program, epoch)
    return graph


class _GraphBuilder:
    def __init__(self, graph: EpochGraph, callgraph: CallGraph) -> None:
        self.graph = graph
        self.callgraph = callgraph
        self._next_id = 0

    def _new_epoch(self, kind: str, stmts: List[Stmt], doall: Optional[Loop],
                   env: LoopEnv) -> Epoch:
        epoch = Epoch(self._next_id, kind, stmts, doall, dict(env))
        self._next_id += 1
        return self.graph.add_epoch(epoch)

    def build_region(self, body: Sequence[Stmt], env: LoopEnv,
                     inline_stack: List[str]) -> Tuple[List[int], List[int]]:
        """Build the epochs of a statement region; returns (entry ids,
        exit ids).  ``env`` carries enclosing region-loop variable
        ranges."""
        entry_ids: List[int] = []
        frontier: List[int] = []  # current exits awaiting the next epoch
        serial_buffer: List[Stmt] = []

        def flush_serial() -> None:
            nonlocal frontier, entry_ids
            if not serial_buffer:
                return
            epoch = self._new_epoch(EpochKind.SERIAL, list(serial_buffer), None, env)
            serial_buffer.clear()
            self._link(frontier, [epoch.id], entry_ids)
            frontier = [epoch.id]

        def attach(sub_entries: List[int], sub_exits: List[int]) -> None:
            nonlocal frontier, entry_ids
            self._link(frontier, sub_entries, entry_ids)
            frontier = sub_exits

        for stmt in body:
            if isinstance(stmt, Loop) and stmt.kind == LoopKind.DOALL:
                flush_serial()
                epoch = self._new_epoch(EpochKind.PARALLEL, [stmt], stmt, env)
                attach([epoch.id], [epoch.id])
            elif isinstance(stmt, Loop) and self._has_parallelism(stmt):
                flush_serial()
                inner_env = dict(env)
                inner_env[stmt.var] = _range_of(stmt)
                sub_entries, sub_exits = self.build_region(stmt.body, inner_env, inline_stack)
                if sub_entries:
                    # region loop: back edge from its exits to its entries
                    for src in sub_exits:
                        for dst in sub_entries:
                            self.graph.add_edge(src, dst, back=True)
                attach(sub_entries, sub_exits)
            elif isinstance(stmt, If) and self._has_parallelism(stmt):
                flush_serial()
                then_e, then_x = self.build_region(stmt.then_body, env, inline_stack)
                else_e, else_x = self.build_region(stmt.else_body, env, inline_stack)
                entries = then_e + else_e
                exits = then_x + else_x
                if not stmt.else_body:
                    exits = exits + frontier  # branch may be skipped
                if not entries:
                    continue
                attach(entries, exits)
            elif isinstance(stmt, CallStmt) and self.callgraph.contains_parallelism(stmt.name):
                if stmt.name in inline_stack:
                    raise ValueError(
                        f"recursive call to {stmt.name!r} containing parallelism "
                        "cannot be analysed")
                flush_serial()
                callee = self.graph.program.procedures[stmt.name]
                inlined = _inline_body(callee, stmt)
                sub_entries, sub_exits = self.build_region(
                    inlined, env, inline_stack + [stmt.name])
                attach(sub_entries, sub_exits)
            else:
                serial_buffer.append(stmt)
        flush_serial()
        if not entry_ids and frontier:
            entry_ids = list(frontier)
        return entry_ids, frontier

    def _has_parallelism(self, stmt: Stmt) -> bool:
        """DOALL inside ``stmt``, lexically or behind procedure calls."""
        for node in stmt.walk():
            if isinstance(node, Loop) and node.kind == LoopKind.DOALL:
                return True
            if isinstance(node, CallStmt) and self.callgraph.contains_parallelism(node.name):
                return True
        return False

    def _link(self, frontier: List[int], targets: List[int], entry_ids: List[int]) -> None:
        if not targets:
            return
        if not frontier and not entry_ids:
            entry_ids.extend(targets)
            return
        for src in frontier:
            for dst in targets:
                self.graph.add_edge(src, dst)
        if not entry_ids:
            entry_ids.extend(targets)


def _contains_doall(stmt: Stmt) -> bool:
    return any(isinstance(s, Loop) and s.kind == LoopKind.DOALL for s in stmt.walk())


def _range_of(loop: Loop) -> Optional[Tuple[int, int]]:
    lo = const_int_value(loop.lower)
    hi = const_int_value(loop.upper)
    if lo is None or hi is None:
        return None
    return (min(lo, hi), max(lo, hi))


def _inline_body(callee, call: CallStmt) -> List[Stmt]:
    """Clone the callee body with formal parameters substituted by the
    actual argument expressions."""
    bindings = {formal: actual for formal, actual in zip(callee.params, call.args)}
    return [substitute_in_stmt(stmt, bindings) for stmt in callee.body]


# ---------------------------------------------------------------------------
# Per-epoch reference collection
# ---------------------------------------------------------------------------

def _collect_refs(program: Program, epoch: Epoch) -> None:
    collector = _RefCollector(program, epoch)
    for stmt in epoch.stmts:
        collector.visit(stmt, (), dict(epoch.env))
    epoch.reads = collector.reads
    epoch.writes = collector.writes


class _RefCollector:
    def __init__(self, program: Program, epoch: Epoch) -> None:
        self.program = program
        self.epoch = epoch
        self.reads: List[RefInfo] = []
        self.writes: List[RefInfo] = []
        self._summary_cache: Dict[str, Tuple[List[Tuple[str, Section]], List[Tuple[str, Section]]]] = {}

    # -- statement dispatch ------------------------------------------------
    def visit(self, stmt: Stmt, loop_stack: Tuple[Loop, ...], env: LoopEnv) -> None:
        if isinstance(stmt, Loop):
            inner_env = dict(env)
            inner_env[stmt.var] = _range_of(stmt)
            for expr in stmt.expressions():
                self._collect_expr(expr, stmt, loop_stack, env, is_write=False)
            for child in stmt.body:
                self.visit(child, loop_stack + (stmt,), inner_env)
        elif isinstance(stmt, If):
            self._collect_expr(stmt.cond, stmt, loop_stack, env, is_write=False)
            for child in stmt.then_body:
                self.visit(child, loop_stack, env)
            for child in stmt.else_body:
                self.visit(child, loop_stack, env)
        elif isinstance(stmt, Assign):
            # RHS reads, LHS subscript reads, LHS write.
            self._collect_expr(stmt.rhs, stmt, loop_stack, env, is_write=False)
            if isinstance(stmt.lhs, ArrayRef):
                for sub in stmt.lhs.subscripts:
                    self._collect_expr(sub, stmt, loop_stack, env, is_write=False)
                self._add_ref(stmt.lhs, stmt, loop_stack, env, is_write=True)
        elif isinstance(stmt, CallStmt):
            for expr in stmt.expressions():
                self._collect_expr(expr, stmt, loop_stack, env, is_write=False)
            self._add_call_summary(stmt, loop_stack)
        elif isinstance(stmt, (PrefetchLine, PrefetchVector, InvalidateLines)):
            # Cache-management statements move data, not values; they are
            # invisible to the dataflow.
            return
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected statement {type(stmt).__name__}")

    # -- expression/ref handling ----------------------------------------------
    def _collect_expr(self, expr: Expr, stmt: Stmt, loop_stack: Tuple[Loop, ...],
                      env: LoopEnv, is_write: bool) -> None:
        for node in expr.walk():
            if isinstance(node, ArrayRef):
                self._add_ref(node, stmt, loop_stack, env, is_write=is_write)

    def _add_ref(self, ref: ArrayRef, stmt: Stmt, loop_stack: Tuple[Loop, ...],
                 env: LoopEnv, is_write: bool) -> None:
        decl = self.program.array(ref.array)
        aref = affine_ref(ref, decl)
        section = (section_of_ref(aref, decl, env) if aref is not None
                   else full_section(decl))
        doall = self.epoch.doall
        align_decl = (self.program.arrays.get(doall.align)
                      if doall is not None and doall.align else None)
        alignment = classify(aref, decl, doall, align_decl)
        info = RefInfo(ref=ref, stmt=stmt, decl=decl, is_write=is_write,
                       aref=aref, section=section, alignment=alignment,
                       epoch_id=self.epoch.id, loop_stack=loop_stack)
        (self.writes if is_write else self.reads).append(info)

    def _add_call_summary(self, call: CallStmt, loop_stack: Tuple[Loop, ...]) -> None:
        reads, writes = self._summarise(call.name)
        klass = AccessClass.SERIAL if self.epoch.doall is None else AccessClass.OTHER
        for array, section in reads:
            decl = self.program.array(array)
            info = RefInfo(ref=ArrayRef(array, [VarRef(f"__sum{d}") for d in range(decl.rank)]),
                           stmt=call, decl=decl, is_write=False, aref=None,
                           section=section, alignment=Alignment(klass),
                           epoch_id=self.epoch.id, loop_stack=loop_stack,
                           summarised_call=call.name)
            self.reads.append(info)
        for array, section in writes:
            decl = self.program.array(array)
            info = RefInfo(ref=ArrayRef(array, [VarRef(f"__sum{d}") for d in range(decl.rank)]),
                           stmt=call, decl=decl, is_write=True, aref=None,
                           section=section, alignment=Alignment(klass),
                           epoch_id=self.epoch.id, loop_stack=loop_stack,
                           summarised_call=call.name)
            self.writes.append(info)

    def _summarise(self, proc_name: str):
        """Whole-array read/write summary of a serial callee (widened to
        full sections: callee loop bounds are not tracked across the
        call boundary)."""
        if proc_name in self._summary_cache:
            return self._summary_cache[proc_name]
        proc = self.program.procedures[proc_name]
        read_arrays: Dict[str, Section] = {}
        write_arrays: Dict[str, Section] = {}
        seen = {proc_name}
        stack = [proc]
        while stack:
            current = stack.pop()
            for stmt in current.walk():
                if isinstance(stmt, CallStmt) and stmt.name not in seen:
                    seen.add(stmt.name)
                    stack.append(self.program.procedures[stmt.name])
                elif isinstance(stmt, Assign):
                    for node in stmt.rhs.walk():
                        if isinstance(node, ArrayRef):
                            decl = self.program.array(node.array)
                            read_arrays[node.array] = full_section(decl)
                    if isinstance(stmt.lhs, ArrayRef):
                        decl = self.program.array(stmt.lhs.array)
                        write_arrays[stmt.lhs.array] = full_section(decl)
                        for sub in stmt.lhs.subscripts:
                            for node in sub.walk():
                                if isinstance(node, ArrayRef):
                                    sub_decl = self.program.array(node.array)
                                    read_arrays[node.array] = full_section(sub_decl)
        result = (list(read_arrays.items()), list(write_arrays.items()))
        self._summary_cache[proc_name] = result
        return result


__all__ = ["Epoch", "EpochGraph", "EpochKind", "RefInfo", "build_epoch_graph"]
