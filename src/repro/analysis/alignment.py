"""Ownership/alignment classification of shared-array references.

The stale reference analysis needs to know, for each reference inside a
parallel epoch, whether the *executing* PE is provably the *owner* of
every element the reference touches.  On the T3D (and in the paper's
hand-transformed codes) data and iterations use matching BLOCK
partitions, so the classification reduces to comparing the reference's
distributed-axis subscript against the DOALL induction variable.

Classes (conservative order — anything not provably ALIGNED may involve
a PE other than the owner):

``ALIGNED``
    subscript ≡ DOALL variable, loop range covers the axis 1..N with the
    same partition kind — executing PE == owner for every element.
``SHIFTED``
    subscript ≡ DOALL variable + c (c ≠ 0) — owner differs only within
    |c| of block boundaries (stencil codes); treated as possibly-remote.
``INVARIANT``
    the distributed-axis subscript does not involve the DOALL variable —
    a whole-column-style access whose owner is some fixed PE.
``OTHER``
    anything else (non-affine, scaled, multi-variable).
``SERIAL``
    the reference executes in a serial epoch (single task on PE 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from typing import Optional as _Optional

from ..ir.arrays import ArrayDecl, DistKind
from ..ir.stmt import Loop, ScheduleKind
from ..ir.visitor import const_int_value
from .affine import AffineForm, AffineRef


class AccessClass:
    ALIGNED = "aligned"
    SHIFTED = "shifted"
    INVARIANT = "invariant"
    OTHER = "other"
    SERIAL = "serial"


@dataclass(frozen=True)
class Alignment:
    """Result of classifying one reference occurrence."""

    klass: str
    shift: int = 0  #: constant offset for SHIFTED accesses

    @property
    def executor_is_owner(self) -> bool:
        return self.klass == AccessClass.ALIGNED

    @property
    def possibly_remote(self) -> bool:
        return self.klass != AccessClass.ALIGNED


def _schedules_match(loop: Loop, decl: ArrayDecl,
                     align_decl: "_Optional[ArrayDecl]") -> bool:
    """True when the DOALL iteration partition provably equals the data
    partition of the distributed axis.

    Two ways to match: an *owner-aligned* loop (``align(A)``) whose align
    target has the same distribution geometry as the referenced array, or
    a plain STATIC_BLOCK loop whose range is exactly the full axis."""
    if align_decl is not None:
        # Owner-computes: iteration v runs on the owner of index v of the
        # align target's distributed axis.  That equals the owner of the
        # referenced element iff both arrays distribute the same way over
        # the same extent.
        return (align_decl.dist.kind == decl.dist.kind
                and align_decl.shape[align_decl.dist_axis] == decl.shape[decl.dist_axis])
    if decl.dist.kind == DistKind.BLOCK and loop.schedule != ScheduleKind.STATIC_BLOCK:
        return False
    if decl.dist.kind == DistKind.CYCLIC and loop.schedule != ScheduleKind.STATIC_CYCLIC:
        return False
    lo = const_int_value(loop.lower)
    hi = const_int_value(loop.upper)
    step = const_int_value(loop.step)
    extent = decl.shape[decl.dist_axis]
    return lo == 1 and hi == extent and step == 1


def classify(aref: Optional[AffineRef], decl: ArrayDecl, doall: Optional[Loop],
             align_decl: Optional[ArrayDecl] = None) -> Alignment:
    """Classify one reference to shared array ``decl``.

    ``doall`` is the parallel loop whose iterations define the executing
    PE, or ``None`` when the reference sits in a serial epoch.
    ``aref`` is the affine form, or ``None`` for non-affine subscripts.
    ``align_decl`` is the declaration of the loop's ``align`` target, if
    any (owner-computes scheduling).
    """
    if not decl.is_shared:
        # Private arrays are per-PE; alignment is moot but treating them
        # as ALIGNED keeps them out of the stale sets.
        return Alignment(AccessClass.ALIGNED)
    if doall is None:
        return Alignment(AccessClass.SERIAL)
    if aref is None:
        return Alignment(AccessClass.OTHER)

    form: AffineForm = aref.dims[decl.dist_axis]
    var = doall.var
    coeff = form.coeff(var)
    other_vars = [v for v in form.variables() if v != var]

    if coeff == 0 and not other_vars and not form.is_symbolic():
        return Alignment(AccessClass.INVARIANT)
    if coeff == 0:
        # Depends on some non-DOALL variable or a symbol: owner varies in
        # a way unrelated to the executing PE.
        return Alignment(AccessClass.INVARIANT)
    if coeff != 1 or other_vars or form.is_symbolic():
        return Alignment(AccessClass.OTHER)
    if not _schedules_match(doall, decl, align_decl):
        return Alignment(AccessClass.OTHER)
    if form.const == 0:
        return Alignment(AccessClass.ALIGNED)
    return Alignment(AccessClass.SHIFTED, shift=form.const)


__all__ = ["AccessClass", "Alignment", "classify"]
