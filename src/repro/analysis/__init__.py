"""Compiler analyses backing the CCDP scheme: affine subscripts, bounded
regular sections, ownership alignment, the epoch flow graph,
interprocedural call-graph reasoning, stale reference analysis, and
reuse/locality analysis."""

from .affine import AffineForm, AffineRef, affine_of, affine_ref
from .alignment import AccessClass, Alignment, classify
from .callgraph import CallGraph
from .epochs import Epoch, EpochGraph, EpochKind, RefInfo, build_epoch_graph
from .locality import (PrefetchGroup, ReuseInfo, classify_self_reuse,
                       group_spatial_groups, innermost_stride)
from .sections import (LoopEnv, Section, SectionSet, Triplet, full_section,
                       section_of_ref)
from .stale import (ArrayState, FlowState, StaleAnalysisResult,
                    analyse_stale_references)
from .parcheck import Conflict, ParCheckResult, check_doall_independence
from .volume import VolumeEstimate, loop_volume, reuse_stays_resident

__all__ = [
    "AffineForm", "AffineRef", "affine_of", "affine_ref",
    "AccessClass", "Alignment", "classify",
    "CallGraph",
    "Epoch", "EpochGraph", "EpochKind", "RefInfo", "build_epoch_graph",
    "PrefetchGroup", "ReuseInfo", "classify_self_reuse",
    "group_spatial_groups", "innermost_stride",
    "LoopEnv", "Section", "SectionSet", "Triplet", "full_section",
    "section_of_ref",
    "ArrayState", "FlowState", "StaleAnalysisResult", "analyse_stale_references",
    "Conflict", "ParCheckResult", "check_doall_independence",
    "VolumeEstimate", "loop_volume", "reuse_stays_resident",
]
