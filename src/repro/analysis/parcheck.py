"""Static DOALL-independence checking.

The paper's execution model *assumes* that "as there are no data
dependencies between the tasks in a parallel epoch, they can be executed
in parallel without synchronization" — in the original toolchain Polaris
guaranteed it.  Since our programs are written in parallel form directly,
this pass re-derives the guarantee: for every DOALL loop it proves (or
fails to prove) that no two different iterations touch the same array
element with at least one write.

The test used is the classic GCD + bounds (Banerjee-style) test on the
affine access pair, specialised to the single parallel index:

two iterations ``v1 != v2`` of DOALL variable ``v`` conflict on refs
``R`` (write) and ``S`` iff  ``addr_R(v1, w) == addr_S(v2, w')`` for some
inner-loop values ``w, w'``.  Writing the addresses as
``a·v + f(w)`` and ``b·v + g(w)``, a conflict requires

    a·v1 - b·v2  ∈  range(g - f)

which we test conservatively: GCD divisibility of the constant part and
interval intersection of the variable part.  "Cannot prove independent"
is reported as a *warning*, not an error — exactly how a parallelising
compiler treats a may-dependence it is told to ignore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd
from typing import Dict, List, Optional, Tuple

from ..ir.arrays import ArrayDecl
from ..ir.expr import ArrayRef
from ..ir.program import Program
from ..ir.stmt import Assign, CallStmt, Loop, LoopKind, Stmt
from ..ir.visitor import const_int_value
from .affine import AffineForm, AffineRef, affine_ref


@dataclass
class Access:
    ref: ArrayRef
    aref: Optional[AffineRef]
    is_write: bool
    inner_ranges: Dict[str, Optional[Tuple[int, int]]]


@dataclass
class Conflict:
    """A (possible) cross-iteration dependence in a DOALL."""

    loop: Loop
    array: str
    write: ArrayRef
    other: ArrayRef
    reason: str

    def describe(self) -> str:
        return (f"doall {self.loop.var}"
                f"{f' [{self.loop.label}]' if self.loop.label else ''}: "
                f"{self.write!r} may conflict with {self.other!r} "
                f"({self.reason})")


@dataclass
class ParCheckResult:
    conflicts: List[Conflict] = field(default_factory=list)
    loops_checked: int = 0
    accesses_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.conflicts

    def summary(self) -> str:
        if self.clean:
            return (f"{self.loops_checked} DOALL loops independent "
                    f"({self.accesses_checked} access pairs)")
        return (f"{len(self.conflicts)} possible cross-iteration "
                f"dependences in {self.loops_checked} DOALL loops")


def check_doall_independence(program: Program) -> ParCheckResult:
    """Verify every DOALL in every procedure."""
    result = ParCheckResult()
    for proc in program.procedures.values():
        for stmt in proc.walk():
            if isinstance(stmt, Loop) and stmt.kind == LoopKind.DOALL:
                result.loops_checked += 1
                _check_loop(program, stmt, result)
    return result


def _check_loop(program: Program, loop: Loop, result: ParCheckResult) -> None:
    accesses = _collect_accesses(program, loop)
    by_array: Dict[str, List[Access]] = {}
    for access in accesses:
        by_array.setdefault(access.ref.array, []).append(access)

    trip = _range_span(loop)
    for array, group in by_array.items():
        decl = program.array(array)
        if not decl.is_shared:
            continue  # private arrays are per-task by construction
        writes = [a for a in group if a.is_write]
        for write in writes:
            for other in group:
                if other is write and len([a for a in group if a is write]) == 1 \
                        and not _self_pairs_needed(write):
                    pass
                result.accesses_checked += 1
                conflict = _pair_conflict(loop, decl, write, other, trip)
                if conflict is not None:
                    result.conflicts.append(conflict)
                    return  # one finding per loop/array keeps reports short


def _self_pairs_needed(access: Access) -> bool:
    return True


def _collect_accesses(program: Program, loop: Loop) -> List[Access]:
    out: List[Access] = []

    def visit(stmt: Stmt, ranges: Dict[str, Optional[Tuple[int, int]]]) -> None:
        if isinstance(stmt, Loop):
            inner = dict(ranges)
            inner[stmt.var] = _bounds(stmt)
            for child in stmt.body:
                visit(child, inner)
            return
        if isinstance(stmt, CallStmt):
            # opaque callee: conservatively flag every shared array it
            # might write (handled by the caller as a may-dependence)
            for expr in stmt.expressions():
                for node in expr.walk():
                    if isinstance(node, ArrayRef):
                        decl = program.array(node.array)
                        out.append(Access(node, affine_ref(node, decl), False,
                                          dict(ranges)))
            return
        if isinstance(stmt, Assign):
            for node in stmt.rhs.walk():
                if isinstance(node, ArrayRef):
                    decl = program.array(node.array)
                    out.append(Access(node, affine_ref(node, decl), False,
                                      dict(ranges)))
            if isinstance(stmt.lhs, ArrayRef):
                decl = program.array(stmt.lhs.array)
                out.append(Access(stmt.lhs, affine_ref(stmt.lhs, decl), True,
                                  dict(ranges)))
                for sub in stmt.lhs.subscripts:
                    for node in sub.walk():
                        if isinstance(node, ArrayRef):
                            sub_decl = program.array(node.array)
                            out.append(Access(node, affine_ref(node, sub_decl),
                                              False, dict(ranges)))
            return
        for body in stmt.bodies():
            for child in body:
                visit(child, ranges)
        for expr in stmt.expressions():
            for node in expr.walk():
                if isinstance(node, ArrayRef):
                    decl = program.array(node.array)
                    out.append(Access(node, affine_ref(node, decl), False,
                                      dict(ranges)))

    for stmt in loop.body:
        visit(stmt, {})
    return out


def _bounds(loop: Loop) -> Optional[Tuple[int, int]]:
    lo = const_int_value(loop.lower)
    hi = const_int_value(loop.upper)
    if lo is None or hi is None:
        return None
    return (min(lo, hi), max(lo, hi))


def _range_span(loop: Loop) -> Optional[int]:
    bounds = _bounds(loop)
    if bounds is None:
        return None
    step = const_int_value(loop.step) or 1
    return max(1, abs(bounds[1] - bounds[0]) // max(1, abs(step)))


def _pair_conflict(loop: Loop, decl: ArrayDecl, write: Access, other: Access,
                   trip: Optional[int]) -> Optional[Conflict]:
    """GCD/bounds test for one (write, other) pair across iterations.

    With ``v = lo + step·t`` the conflict equation for iterations
    ``t1 != t2`` is ``step·(a·t1 - b·t2) + (a - b)·lo = delta`` where
    ``delta`` ranges over the difference of the var-free address parts."""
    if write.aref is None or other.aref is None:
        return Conflict(loop, decl.name, write.ref, other.ref,
                        "non-affine subscript")
    var = loop.var
    a = write.aref.address.coeff(var)
    b = other.aref.address.coeff(var)
    step = abs(const_int_value(loop.step) or 1)
    delta_lo, delta_hi = _delta_range(write, other, var)

    if a == 0 and b == 0:
        # Both invariant in the parallel index: every iteration touches
        # the same element(s) — any write is a cross-task conflict.
        if delta_lo <= 0 <= delta_hi:
            return Conflict(loop, decl.name, write.ref, other.ref,
                            "parallel-invariant write")
        return None

    if a == b:
        # Exact case: the equation reduces to a·step·(t1 - t2) = delta.
        # A conflict needs a NON-zero multiple of a·step inside the delta
        # range (m = 0 is the same task touching its own data).
        k = abs(a) * step
        lo_m = -(-delta_lo // k)   # ceil
        hi_m = delta_hi // k       # floor
        distances = [m for m in range(lo_m, hi_m + 1)
                     if m != 0 and (trip is None or abs(m) <= trip)]
        if not distances:
            return None
        distance = min(abs(m) for m in distances)
        return Conflict(loop, decl.name, write.ref, other.ref,
                        f"loop-carried distance {distance}")

    # Mixed coefficients: GCD divisibility over the scaled lattice.
    g = gcd(a * step, b * step) if (a and b) else max(abs(a), abs(b)) * step
    if g == 0:
        return None
    first = -(-delta_lo // g) * g
    if first > delta_hi:
        return None  # GCD test proves independence
    return Conflict(loop, decl.name, write.ref, other.ref,
                    "GCD test cannot rule out overlap")


def _delta_range(write: Access, other: Access,
                 par_var: str = "") -> Tuple[int, int]:
    """Range of addr_other_variable_part - addr_write_variable_part over
    the inner-loop iteration spaces, with the parallel index excluded
    (its coefficients are handled by the GCD equation).  Unknown inner
    ranges widen to conservative infinity."""
    diff = other.aref.address - write.aref.address  # type: ignore[union-attr]
    if par_var:
        diff = diff.drop_var(par_var)
    lo = hi = diff.const
    ranges = {**write.inner_ranges, **other.inner_ranges}
    for name, coeff in diff.coeffs:
        bounds = ranges.get(name)
        if bounds is None:
            return (-(1 << 30), 1 << 30)  # unknown: conservative
        vlo, vhi = bounds
        if coeff >= 0:
            lo += coeff * vlo
            hi += coeff * vhi
        else:
            lo += coeff * vhi
            hi += coeff * vlo
    if diff.sym_coeffs:
        return (-(1 << 30), 1 << 30)
    return (lo, hi)


def _variable_part_may_intersect(write: Access, other: Access,
                                 allow_equal: bool) -> bool:
    lo, hi = _delta_range(write, other)
    return lo <= 0 <= hi


__all__ = ["Access", "Conflict", "ParCheckResult", "check_doall_independence"]
