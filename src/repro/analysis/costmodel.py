"""Static execution-time estimation.

The software-pipelining scheduler needs the execution time of a loop
body ("the compiler can compute the loop execution time since the
number of clock cycles taken by each instruction is known"), and the
move-back scheduler needs the cycle distance between a hoisted prefetch
and its use.  This model charges published per-operation costs and
assumes cache hits for memory references — the standard assumption when
sizing prefetch distances (a miss only makes the prefetch *earlier*
relative to need, which is the safe direction given queue bounds).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.expr import (ArrayRef, BinOp, Expr, FloatConst, IntConst,
                       IntrinsicCall, SymConst, UnaryOp, VarRef, expr_dtype)
from ..ir.loops import static_trip_count
from ..ir.stmt import (Assign, CallStmt, If, InvalidateLines, Loop,
                       PrefetchLine, PrefetchVector, Stmt)
from ..machine.params import MachineParams

#: Assumed trip count for loops whose bounds are unknown at compile time.
DEFAULT_TRIP = 32

#: Assumed cost of calling an unanalysed procedure.
CALL_COST = 200.0


def expr_cost(expr: Expr, params: MachineParams) -> float:
    """Estimated cycles to evaluate an expression (loads assumed hits)."""
    if isinstance(expr, (IntConst, FloatConst, SymConst, VarRef)):
        return 0.0
    if isinstance(expr, ArrayRef):
        cost = float(params.cache_hit)
        for sub in expr.subscripts:
            cost += expr_cost(sub, params)
        return cost
    if isinstance(expr, UnaryOp):
        return params.int_op + expr_cost(expr.operand, params)
    if isinstance(expr, IntrinsicCall):
        return params.intrinsic_cost + sum(expr_cost(a, params) for a in expr.args)
    if isinstance(expr, BinOp):
        inner = expr_cost(expr.left, params) + expr_cost(expr.right, params)
        is_real = expr_dtype(expr).is_real()
        if expr.op in ("+", "-"):
            return inner + (params.flop_add if is_real else params.int_op)
        if expr.op == "*":
            return inner + (params.flop_mul if is_real else params.int_op)
        if expr.op in ("/", "**"):
            return inner + params.flop_div
        return inner + params.int_op
    return params.int_op


def stmt_cost(stmt: Stmt, params: MachineParams) -> float:
    """Estimated cycles to execute one statement once."""
    if isinstance(stmt, Assign):
        cost = expr_cost(stmt.rhs, params) + float(params.write_local)
        if isinstance(stmt.lhs, ArrayRef):
            for sub in stmt.lhs.subscripts:
                cost += expr_cost(sub, params)
        return cost
    if isinstance(stmt, If):
        then_cost = sum(stmt_cost(s, params) for s in stmt.then_body)
        else_cost = sum(stmt_cost(s, params) for s in stmt.else_body)
        return (expr_cost(stmt.cond, params) + params.int_op
                + 0.5 * (then_cost + else_cost))
    if isinstance(stmt, Loop):
        trip = static_trip_count(stmt)
        if trip is None:
            trip = DEFAULT_TRIP
        body = sum(stmt_cost(s, params) for s in stmt.body)
        return trip * (body + params.loop_overhead)
    if isinstance(stmt, CallStmt):
        return CALL_COST
    if isinstance(stmt, PrefetchLine):
        return float(params.prefetch_issue)
    if isinstance(stmt, PrefetchVector):
        return float(params.vector_startup)
    if isinstance(stmt, InvalidateLines):
        return float(params.int_op)
    return float(params.int_op)


def loop_body_cost(loop: Loop, params: MachineParams) -> float:
    """Cycles per iteration of ``loop`` (body + loop overhead)."""
    return sum(stmt_cost(s, params) for s in loop.body) + params.loop_overhead


def segment_cost(stmts: Sequence[Stmt], params: MachineParams) -> float:
    return sum(stmt_cost(s, params) for s in stmts)


def average_remote_latency(params: MachineParams) -> float:
    """Mean remote read latency over the torus — the 'average memory
    latency for a prefetch operation' the scheduler divides by."""
    from ..machine.topology import torus_for

    torus = torus_for(params.n_pes)
    return params.remote_base + params.remote_per_hop * torus.mean_hops()


__all__ = ["expr_cost", "stmt_cost", "loop_body_cost", "segment_cost",
           "average_remote_latency", "DEFAULT_TRIP", "CALL_COST"]
