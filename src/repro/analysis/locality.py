"""Data-reuse (locality) analysis for prefetch target selection.

Implements the reuse classification the paper's prefetch target
analysis relies on:

* **Uniformly generated** references — same array, identical affine
  index coefficients, differing only in the constant term.
* **Group-spatial** reuse — uniformly generated references whose
  constant address offsets fall within one cache line ("the compiler can
  perform mapping calculations to determine whether these addresses are
  mapped onto the same cache line").  Only the *leading* reference of a
  group needs a prefetch; trailing references become normal reads that
  hit the freshly-fetched line.
* **Self-spatial** reuse — a reference whose innermost stride is smaller
  than the line, so consecutive iterations share lines.
* **Self-temporal** reuse — a reference invariant in the innermost loop.

The leading reference is the one that touches a new cache line first as
the innermost loop advances: the largest constant offset for a positive
stride, the smallest for a negative stride.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.arrays import ArrayDecl
from .affine import AffineRef
from .epochs import RefInfo


@dataclass
class ReuseInfo:
    """Self-reuse classification of one reference in its inner loop."""

    ref: RefInfo
    stride_elems: int          #: address delta per innermost iteration
    self_spatial: bool
    self_temporal: bool


@dataclass
class PrefetchGroup:
    """A group-spatial equivalence class inside one LSC.

    ``leading`` is the reference to prefetch; ``trailing`` are issued as
    normal reads.  ``span_elems`` is the constant-offset span of the
    group (used by the scheduler to size the warm-up prefetch that keeps
    trailing references coherent before the leading pipeline fills)."""

    leading: RefInfo
    trailing: List[RefInfo] = field(default_factory=list)
    stride_elems: int = 0
    span_elems: int = 0

    @property
    def members(self) -> List[RefInfo]:
        return [self.leading] + self.trailing

    def describe(self) -> str:
        names = ", ".join(repr(m.ref) for m in self.members)
        return f"group[{names}] leading={self.leading.ref!r} stride={self.stride_elems}"


def innermost_stride(info: RefInfo, inner_var: Optional[str]) -> Optional[int]:
    """Element stride of the reference per innermost-loop iteration;
    ``None`` for non-affine references."""
    if info.aref is None:
        return None
    if inner_var is None:
        return 0
    return info.aref.address.coeff(inner_var)


def classify_self_reuse(info: RefInfo, inner_var: Optional[str],
                        line_elems: int) -> Optional[ReuseInfo]:
    stride = innermost_stride(info, inner_var)
    if stride is None:
        return None
    return ReuseInfo(
        ref=info,
        stride_elems=stride,
        self_spatial=0 < abs(stride) < line_elems,
        self_temporal=stride == 0,
    )


def group_spatial_groups(refs: Sequence[RefInfo], inner_var: Optional[str],
                         line_elems: int) -> Tuple[List[PrefetchGroup], List[RefInfo]]:
    """Partition references into group-spatial prefetch groups.

    Returns ``(groups, nonaffine)``: non-affine references cannot be
    analysed and are returned separately (the paper conservatively keeps
    them as prefetch targets).

    Two references group together when they are uniformly generated and
    their constant address offsets differ by less than one cache line.
    """
    nonaffine: List[RefInfo] = [r for r in refs if r.aref is None]
    affine: List[RefInfo] = [r for r in refs if r.aref is not None]

    # Bucket by uniformly-generated shape (array + coefficient vectors).
    buckets: Dict[tuple, List[RefInfo]] = {}
    for info in affine:
        aref = info.aref
        assert aref is not None
        shape_key = (aref.array,
                     tuple(d.coeffs for d in aref.dims),
                     tuple(d.sym_coeffs for d in aref.dims),
                     aref.address.coeffs, aref.address.sym_coeffs)
        buckets.setdefault(shape_key, []).append(info)

    groups: List[PrefetchGroup] = []
    for bucket in buckets.values():
        bucket.sort(key=lambda r: r.aref.address.const)  # type: ignore[union-attr]
        stride = innermost_stride(bucket[0], inner_var) or 0
        if abs(stride) >= line_elems:
            # Large strides leave uncovered lines between consecutive
            # leading prefetches, so trailing references could not safely
            # piggyback; keep every reference as its own target.
            clusters: List[List[RefInfo]] = [[info] for info in bucket]
        else:
            # Chain-cluster by constant offset: refs within a line of the
            # previous member share its group.
            current: List[RefInfo] = [bucket[0]]
            clusters = [current]
            for info in bucket[1:]:
                prev_const = current[-1].aref.address.const  # type: ignore[union-attr]
                if info.aref.address.const - prev_const < line_elems:  # type: ignore[union-attr]
                    current.append(info)
                else:
                    current = [info]
                    clusters.append(current)
        for cluster in clusters:
            consts = [r.aref.address.const for r in cluster]  # type: ignore[union-attr]
            if stride >= 0:
                leading = cluster[-1]  # largest offset touches new lines first
            else:
                leading = cluster[0]
            trailing = [r for r in cluster if r is not leading]
            groups.append(PrefetchGroup(
                leading=leading, trailing=trailing, stride_elems=stride,
                span_elems=max(consts) - min(consts)))
    return groups, nonaffine


__all__ = ["ReuseInfo", "PrefetchGroup", "innermost_stride",
           "classify_self_reuse", "group_spatial_groups"]
