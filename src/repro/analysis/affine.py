"""Affine analysis of array subscripts.

The prefetch target analysis of the paper (Fig. 1) requires the compiler
to "construct linear expressions for the addresses of references in
terms of loop induction variables and constants".  This module builds
those linear forms: an :class:`AffineForm` is

    c0  +  Σ ci · var_i  +  Σ sj · sym_j

with integer coefficients over loop induction variables (``var_i``) and
symbolic program constants (``sym_j``, e.g. an unknown problem size).
Subscripts that cannot be put in this form are *non-affine*; per the
paper they are conservatively treated as prefetch targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..ir.arrays import ArrayDecl
from ..ir.expr import (ArrayRef, BinOp, Expr, IntConst, SymConst, UnaryOp,
                       VarRef)


@dataclass(frozen=True)
class AffineForm:
    """An affine integer expression over loop variables and symbols."""

    const: int = 0
    coeffs: Tuple[Tuple[str, int], ...] = ()      # sorted (var, coeff)
    sym_coeffs: Tuple[Tuple[str, int], ...] = ()  # sorted (sym, coeff)

    # -- constructors ------------------------------------------------------
    @staticmethod
    def constant(value: int) -> "AffineForm":
        return AffineForm(const=int(value))

    @staticmethod
    def var(name: str, coeff: int = 1) -> "AffineForm":
        return AffineForm(coeffs=((name, int(coeff)),)) if coeff else AffineForm()

    @staticmethod
    def sym(name: str, coeff: int = 1) -> "AffineForm":
        return AffineForm(sym_coeffs=((name, int(coeff)),)) if coeff else AffineForm()

    # -- algebra -----------------------------------------------------------
    def _combine(self, other: "AffineForm", sign: int) -> "AffineForm":
        coeffs: Dict[str, int] = dict(self.coeffs)
        for name, c in other.coeffs:
            coeffs[name] = coeffs.get(name, 0) + sign * c
        syms: Dict[str, int] = dict(self.sym_coeffs)
        for name, c in other.sym_coeffs:
            syms[name] = syms.get(name, 0) + sign * c
        return AffineForm(
            const=self.const + sign * other.const,
            coeffs=tuple(sorted((k, v) for k, v in coeffs.items() if v)),
            sym_coeffs=tuple(sorted((k, v) for k, v in syms.items() if v)),
        )

    def __add__(self, other: "AffineForm") -> "AffineForm":
        return self._combine(other, 1)

    def __sub__(self, other: "AffineForm") -> "AffineForm":
        return self._combine(other, -1)

    def scale(self, factor: int) -> "AffineForm":
        if factor == 0:
            return AffineForm()
        return AffineForm(
            const=self.const * factor,
            coeffs=tuple((k, v * factor) for k, v in self.coeffs),
            sym_coeffs=tuple((k, v * factor) for k, v in self.sym_coeffs),
        )

    # -- queries -------------------------------------------------------------
    def coeff(self, var: str) -> int:
        for name, c in self.coeffs:
            if name == var:
                return c
        return 0

    def is_constant(self) -> bool:
        return not self.coeffs and not self.sym_coeffs

    def is_symbolic(self) -> bool:
        return bool(self.sym_coeffs)

    def variables(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.coeffs)

    def drop_var(self, var: str) -> "AffineForm":
        return AffineForm(self.const,
                          tuple((k, v) for k, v in self.coeffs if k != var),
                          self.sym_coeffs)

    def same_shape(self, other: "AffineForm") -> bool:
        """True when the two forms differ only in the constant term —
        the *uniformly generated* criterion of the paper."""
        return self.coeffs == other.coeffs and self.sym_coeffs == other.sym_coeffs

    def evaluate(self, env: Dict[str, int]) -> int:
        """Evaluate with concrete variable/symbol values."""
        total = self.const
        for name, c in self.coeffs:
            total += c * env[name]
        for name, c in self.sym_coeffs:
            total += c * env[name]
        return total

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [str(self.const)] if self.const or (not self.coeffs and not self.sym_coeffs) else []
        parts += [f"{c}*{v}" for v, c in self.coeffs]
        parts += [f"{c}*${s}" for s, c in self.sym_coeffs]
        return " + ".join(parts)


def affine_of(expr: Expr) -> Optional[AffineForm]:
    """Build the affine form of an integer expression, or ``None`` if the
    expression is non-affine (products of variables, divisions, calls,
    array-valued subscripts ...)."""
    if isinstance(expr, IntConst):
        return AffineForm.constant(expr.value)
    if isinstance(expr, SymConst):
        return AffineForm.sym(expr.name)
    if isinstance(expr, VarRef):
        return AffineForm.var(expr.name)
    if isinstance(expr, UnaryOp):
        inner = affine_of(expr.operand)
        if inner is None:
            return None
        if expr.op == "-":
            return inner.scale(-1)
        if expr.op == "+":
            return inner
        return None
    if isinstance(expr, BinOp):
        if expr.op == "+" or expr.op == "-":
            left = affine_of(expr.left)
            right = affine_of(expr.right)
            if left is None or right is None:
                return None
            return left + right if expr.op == "+" else left - right
        if expr.op == "*":
            left = affine_of(expr.left)
            right = affine_of(expr.right)
            if left is None or right is None:
                return None
            if left.is_constant() and not left.is_symbolic():
                return right.scale(left.const)
            if right.is_constant() and not right.is_symbolic():
                return left.scale(right.const)
            return None
        return None
    return None


@dataclass(frozen=True)
class AffineRef:
    """A fully-affine array reference: one :class:`AffineForm` per
    dimension plus the derived linear *address* form in elements."""

    array: str
    dims: Tuple[AffineForm, ...]
    address: AffineForm  # 0-based linear element offset within the array

    def innermost_stride(self, var: str) -> int:
        """Element stride of the address as ``var`` advances by 1."""
        return self.address.coeff(var)

    def uniformly_generated_with(self, other: "AffineRef") -> bool:
        """Same array, same index coefficients, constants may differ
        (paper: 'similar array index functions which differ only in the
        constant term')."""
        return (self.array == other.array
                and len(self.dims) == len(other.dims)
                and all(a.same_shape(b) for a, b in zip(self.dims, other.dims))
                and self.address.same_shape(other.address))


def affine_ref(ref: ArrayRef, decl: ArrayDecl) -> Optional[AffineRef]:
    """Affine form of every subscript of ``ref``, or ``None`` when any
    subscript is non-affine.  The linear address uses the declaration's
    column-major strides and 1-based subscripts."""
    dims = []
    for sub in ref.subscripts:
        form = affine_of(sub)
        if form is None:
            return None
        dims.append(form)
    address = AffineForm()
    for form, stride in zip(dims, decl.strides()):
        address = address + (form - AffineForm.constant(1)).scale(stride)
    return AffineRef(ref.array, tuple(dims), address)


__all__ = ["AffineForm", "AffineRef", "affine_of", "affine_ref"]
