"""Loop volume estimation.

The paper notes that exploiting self/group-temporal locality "would
require additional compiler analyses ... such as the estimation of loop
volume": a reference whose data is re-touched before the loop has pulled
more data through the cache than the cache holds will still be resident,
so prefetching it again is wasted work.

This module estimates the *volume* — distinct cache lines touched — of
one iteration of a loop and of a whole loop execution, from the affine
footprints of its references.  The CCDP driver uses it in the non-stale
prefetching extension (`prefetch_nonstale`) to skip candidates whose
reuse distance fits in the cache; the coherence-critical stale targets
are never pruned this way (a resident line is exactly what may be
stale).

Estimates are conservative in the *prefetch-more* direction: unknown
trip counts and non-affine references round the volume up, so pruning
only happens when residency is actually plausible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..ir.expr import ArrayRef
from ..ir.loops import static_trip_count
from ..ir.stmt import Assign, CallStmt, If, Loop, Stmt
from ..machine.params import MachineParams
from .affine import AffineRef, affine_ref

#: Trip count assumed for loops with unknown bounds (rounds volume up).
UNKNOWN_TRIP = 1 << 16


@dataclass
class VolumeEstimate:
    """Estimated cache-line traffic of one loop."""

    lines_per_iteration: float   #: distinct lines touched per iteration
    trip: int                    #: trip count used (UNKNOWN_TRIP if unknown)
    refs: int                    #: affine references counted
    nonaffine_refs: int          #: references widened to full lines/iter

    @property
    def total_lines(self) -> float:
        return self.lines_per_iteration * self.trip

    def fits_in(self, params: MachineParams, fraction: float = 1.0) -> bool:
        """Would one full execution's footprint stay resident in the
        cache?  Only meaningful for direct-mapped caches as a heuristic —
        conflicts can evict earlier, which is why callers use it for
        optimisation pruning, never for correctness."""
        return self.total_lines <= params.n_lines * fraction


def _ref_lines_per_iter(aref: Optional[AffineRef], var: str,
                        params: MachineParams) -> float:
    """Fresh cache lines one reference pulls per iteration of ``var``."""
    if aref is None:
        return 1.0  # non-affine: assume a new line every iteration
    stride = abs(aref.address.coeff(var))
    if stride == 0:
        return 0.0  # invariant: one line for the whole loop (amortised ~0)
    return min(1.0, stride / params.line_words)


def loop_volume(loop: Loop, arrays: Dict[str, "object"],
                params: MachineParams) -> VolumeEstimate:
    """Estimate the line volume of one (innermost) loop.

    ``arrays`` maps array name -> declaration (for affine address forms).
    Distinct references to the same line group are merged through their
    uniformly-generated classes: members of one class whose constant
    offsets fall within a line are counted once.
    """
    trip = static_trip_count(loop)
    if trip is None:
        trip = UNKNOWN_TRIP

    per_iter = 0.0
    refs = 0
    nonaffine = 0
    seen_classes: List[AffineRef] = []
    for stmt in loop.walk():
        for expr in stmt.expressions():
            for node in expr.walk():
                if not isinstance(node, ArrayRef):
                    continue
                decl = arrays.get(node.array)
                if decl is None:
                    continue
                refs += 1
                aref = affine_ref(node, decl)  # type: ignore[arg-type]
                if aref is None:
                    nonaffine += 1
                    per_iter += 1.0
                    continue
                duplicate = any(
                    aref.uniformly_generated_with(other)
                    and abs(aref.address.const - other.address.const)
                    < params.line_words
                    for other in seen_classes)
                if duplicate:
                    continue
                seen_classes.append(aref)
                per_iter += _ref_lines_per_iter(aref, loop.var, params)
    return VolumeEstimate(lines_per_iteration=per_iter, trip=trip,
                          refs=refs, nonaffine_refs=nonaffine)


def reuse_stays_resident(loop: Loop, arrays: Dict[str, "object"],
                         params: MachineParams,
                         fraction: float = 0.5) -> bool:
    """True when the loop's whole footprint plausibly fits in ``fraction``
    of the cache — i.e. temporal reuse across iterations will hit without
    help, and latency-only prefetching would be wasted."""
    return loop_volume(loop, arrays, params).fits_in(params, fraction)


__all__ = ["VolumeEstimate", "loop_volume", "reuse_stays_resident",
           "UNKNOWN_TRIP"]
