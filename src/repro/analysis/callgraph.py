"""Call graph construction and interprocedural reachability.

The paper's stale reference analysis is interprocedural: procedure
bodies must be summarised (or inlined) so that writes performed inside a
callee are visible to the epoch-level dataflow.  Our IR keeps arrays
global, so summaries are simple read/write section pairs per procedure;
epoch construction *inlines* callees that contain parallel loops and
*summarises* purely-serial callees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..ir.program import Program
from ..ir.stmt import CallStmt, Loop, LoopKind, Stmt


@dataclass
class CallGraph:
    """Direct-call adjacency plus derived properties."""

    program: Program
    callees: Dict[str, List[str]] = field(default_factory=dict)
    callers: Dict[str, List[str]] = field(default_factory=dict)

    @staticmethod
    def build(program: Program) -> "CallGraph":
        graph = CallGraph(program)
        for name, proc in program.procedures.items():
            graph.callees.setdefault(name, [])
            graph.callers.setdefault(name, [])
        for name, proc in program.procedures.items():
            for stmt in proc.walk():
                if isinstance(stmt, CallStmt):
                    if stmt.name not in program.procedures:
                        raise KeyError(f"call to undefined procedure {stmt.name!r}")
                    graph.callees[name].append(stmt.name)
                    graph.callers[stmt.name].append(name)
        return graph

    # -- queries ------------------------------------------------------------
    def reachable_from(self, root: str) -> Set[str]:
        seen: Set[str] = set()
        stack = [root]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.callees.get(name, ()))
        return seen

    def is_recursive(self, name: str) -> bool:
        """True when ``name`` can (transitively) call itself."""
        stack = list(self.callees.get(name, ()))
        seen: Set[str] = set()
        while stack:
            callee = stack.pop()
            if callee == name:
                return True
            if callee in seen:
                continue
            seen.add(callee)
            stack.extend(self.callees.get(callee, ()))
        return False

    def any_recursion(self) -> bool:
        return any(self.is_recursive(name) for name in self.program.procedures)

    def contains_parallelism(self, name: str) -> bool:
        """True when ``name`` or any transitive callee contains a DOALL —
        such calls must be inlined into the epoch structure."""
        for proc_name in self.reachable_from(name):
            proc = self.program.procedures[proc_name]
            for stmt in proc.walk():
                if isinstance(stmt, Loop) and stmt.kind == LoopKind.DOALL:
                    return True
        return False

    def topological_order(self) -> List[str]:
        """Callees-before-callers order (raises on recursion)."""
        if self.any_recursion():
            raise ValueError("call graph is recursive; no topological order")
        order: List[str] = []
        visited: Set[str] = set()

        def visit(name: str) -> None:
            if name in visited:
                return
            visited.add(name)
            for callee in self.callees.get(name, ()):
                visit(callee)
            order.append(name)

        for name in self.program.procedures:
            visit(name)
        return order


__all__ = ["CallGraph"]
