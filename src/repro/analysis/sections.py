"""Bounded regular sections — the array-region abstraction of the
Choi–Yew array dataflow analysis.

A :class:`Section` describes a rectangular region of one array as a
triplet ``(lo, hi, step)`` per dimension (1-based, inclusive).  Loop
bounds that are unknown at compile time widen to the full dimension
extent — the conservative direction for staleness (more references are
flagged potentially-stale, never fewer).

:class:`SectionSet` is a small union-of-sections container with a bound
on the number of disjuncts; when it overflows, sections are merged into
their rectangular hull (again, conservative).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ir.arrays import ArrayDecl
from .affine import AffineForm, AffineRef


@dataclass(frozen=True)
class Triplet:
    """1-based inclusive ``lo : hi : step`` along one dimension."""

    lo: int
    hi: int
    step: int = 1

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ValueError("triplet step must be positive")

    @property
    def empty(self) -> bool:
        return self.lo > self.hi

    def count(self) -> int:
        return 0 if self.empty else (self.hi - self.lo) // self.step + 1

    def contains(self, index: int) -> bool:
        return (self.lo <= index <= self.hi
                and (index - self.lo) % self.step == 0)

    def overlaps(self, other: "Triplet") -> bool:
        if self.empty or other.empty:
            return False
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return False
        if self.step == 1 or other.step == 1:
            return True
        # Strided overlap: solve lo1 + a*s1 == lo2 + b*s2 within [lo, hi].
        g = gcd(self.step, other.step)
        if (other.lo - self.lo) % g != 0:
            return False
        return True  # a common residue exists within the intersected range (conservative)

    def hull(self, other: "Triplet") -> "Triplet":
        if self.empty:
            return other
        if other.empty:
            return self
        step = gcd(self.step, other.step)
        if (other.lo - self.lo) % step != 0:
            step = 1
        return Triplet(min(self.lo, other.lo), max(self.hi, other.hi), max(step, 1))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.empty:
            return "∅"
        if self.step == 1:
            return f"{self.lo}:{self.hi}"
        return f"{self.lo}:{self.hi}:{self.step}"


@dataclass(frozen=True)
class Section:
    """A rectangular region of one array."""

    array: str
    triplets: Tuple[Triplet, ...]

    @property
    def empty(self) -> bool:
        return any(t.empty for t in self.triplets)

    def count(self) -> int:
        n = 1
        for t in self.triplets:
            n *= t.count()
        return n

    def overlaps(self, other: "Section") -> bool:
        if self.array != other.array or self.empty or other.empty:
            return False
        return all(a.overlaps(b) for a, b in zip(self.triplets, other.triplets))

    def contains_point(self, indices: Sequence[int]) -> bool:
        return all(t.contains(i) for t, i in zip(self.triplets, indices))

    def hull(self, other: "Section") -> "Section":
        if self.array != other.array:
            raise ValueError("hull of sections of different arrays")
        return Section(self.array, tuple(a.hull(b) for a, b in zip(self.triplets, other.triplets)))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.array}[{', '.join(map(str, self.triplets))}]"


def full_section(decl: ArrayDecl) -> Section:
    return Section(decl.name, tuple(Triplet(1, extent) for extent in decl.shape))


#: Loop environment: var -> (lo, hi) 1-based inclusive, or None if unknown.
LoopEnv = Dict[str, Optional[Tuple[int, int]]]


def section_of_ref(aref: AffineRef, decl: ArrayDecl, env: LoopEnv) -> Section:
    """Section touched by an affine reference as its loop variables sweep
    the ranges in ``env``.  Variables missing from ``env`` and symbolic
    coefficients widen that dimension to its full extent."""
    triplets: List[Triplet] = []
    for form, extent in zip(aref.dims, decl.shape):
        triplet = _triplet_of_form(form, extent, env)
        triplets.append(triplet)
    return Section(decl.name, tuple(triplets))


def _triplet_of_form(form: AffineForm, extent: int, env: LoopEnv) -> Triplet:
    if form.is_symbolic():
        return Triplet(1, extent)
    lo = hi = form.const
    steps: List[int] = []
    for var, coeff in form.coeffs:
        bounds = env.get(var)
        if bounds is None:
            return Triplet(1, extent)
        vlo, vhi = bounds
        if vlo > vhi:
            return Triplet(1, 0)  # empty loop range
        if coeff >= 0:
            lo += coeff * vlo
            hi += coeff * vhi
        else:
            lo += coeff * vhi
            hi += coeff * vlo
        steps.append(abs(coeff))
    step = steps[0] if len(steps) == 1 else (gcd(*steps) if steps else 1)
    # Clamp into the declared extent: out-of-range parts of a conservative
    # estimate cannot be touched by a valid execution.
    lo = max(lo, 1)
    hi = min(hi, extent)
    return Triplet(lo, hi, max(step, 1)) if lo <= hi else Triplet(1, 0)


class SectionSet:
    """A union of sections of one array with bounded disjunct count."""

    MAX_DISJUNCTS = 8

    def __init__(self, array: str, sections: Iterable[Section] = ()) -> None:
        self.array = array
        self.sections: List[Section] = []
        for section in sections:
            self.add(section)

    def add(self, section: Section) -> bool:
        """Union in a section; returns True when the set changed."""
        if section.array != self.array:
            raise ValueError("section array mismatch")
        if section.empty:
            return False
        for existing in self.sections:
            if _covers(existing, section):
                return False
        self.sections = [s for s in self.sections if not _covers(section, s)]
        self.sections.append(section)
        if len(self.sections) > self.MAX_DISJUNCTS:
            hull = self.sections[0]
            for s in self.sections[1:]:
                hull = hull.hull(s)
            self.sections = [hull]
        return True

    def union(self, other: "SectionSet") -> bool:
        changed = False
        for section in other.sections:
            changed |= self.add(section)
        return changed

    def overlaps(self, section: Section) -> bool:
        return any(s.overlaps(section) for s in self.sections)

    def overlaps_set(self, other: "SectionSet") -> bool:
        return any(self.overlaps(s) for s in other.sections)

    @property
    def empty(self) -> bool:
        return not self.sections

    def copy(self) -> "SectionSet":
        fresh = SectionSet(self.array)
        fresh.sections = list(self.sections)
        return fresh

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SectionSet):
            return NotImplemented
        return self.array == other.array and set(map(str, self.sections)) == set(map(str, other.sections))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " ∪ ".join(map(str, self.sections)) if self.sections else "∅"


def _covers(outer: Section, inner: Section) -> bool:
    """True when ``outer`` provably contains ``inner`` (step-aware only
    for unit steps; otherwise requires equal triplets)."""
    for a, b in zip(outer.triplets, inner.triplets):
        if b.empty:
            continue
        if a.empty:
            return False
        if a.step == 1:
            if not (a.lo <= b.lo and b.hi <= a.hi):
                return False
        elif (a.lo, a.hi, a.step) != (b.lo, b.hi, b.step):
            return False
    return True


__all__ = ["Triplet", "Section", "SectionSet", "full_section",
           "section_of_ref", "LoopEnv"]
